module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Instance = Ipdb_relational.Instance
module Fact = Ipdb_relational.Fact
module Fo = Ipdb_logic.Fo
module View = Ipdb_logic.View
module Surgery = Ipdb_logic.Surgery
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Ti = Ipdb_pdb.Ti

type input = { ti : Ti.Finite.t; condition : Fo.t; view : View.t }

type output = {
  ti' : Ti.Finite.t;
  view' : View.t;
  copies : int;
  d0 : Instance.t;
  p0 : Q.t;
  psi_prob : Q.t;
  q0 : Q.t;
}

let copy_suffix = "$c"
let order_relation = "Leq$"
let bottom_relation = "Bot$"
let rename r = r ^ copy_suffix

let target { ti; condition; view } =
  let expanded = Ti.Finite.to_finite_pdb ti in
  match Finite_pdb.condition expanded condition with
  | None -> invalid_arg "Decondition.target: the condition has probability zero"
  | Some conditioned -> Finite_pdb.map_view view conditioned

(* Copy-tagged schema of I^(k), plus the order and bottom relations. *)
let product_schema base =
  Schema.union
    (Schema.make (List.map (fun (r, a) -> (rename r, a + 1)) (Schema.relations base)))
    (Schema.make [ (order_relation, 2); (bottom_relation, 0) ])

let index_guard iv = Fo.atom order_relation [ iv; iv ]

let decondition ?(max_copies = 16) ({ ti; condition; view } as input) =
  let d = target input in
  (* Distinguished world: the most probable one keeps k small. *)
  let d0, p0 =
    List.fold_left
      (fun ((_, bp) as best) ((_, p) as cand) -> if Q.gt p bp then cand else best)
      (List.hd (Finite_pdb.support d))
      (Finite_pdb.support d)
  in
  let out_schema = View.output_schema view in
  if Q.is_one p0 then begin
    (* D consists of a single world: it is trivially tuple-independent. *)
    let ti' = Ti.Finite.make out_schema (List.map (fun f -> (f, Q.one)) (Instance.to_list d0)) in
    {
      ti';
      view' = View.identity out_schema;
      copies = 0;
      d0;
      p0;
      psi_prob = Q.zero;
      q0 = Q.zero;
    }
  end
  else begin
    let phi0 = Surgery.hardcode_instance_sentence view d0 in
    let psi = Fo.And (condition, Fo.Not phi0) in
    let expanded = Ti.Finite.to_finite_pdb ti in
    let psi_prob = Finite_pdb.prob_sentence expanded psi in
    (* 0 < P(ψ) < 1 holds because 0 < p0 < 1 (see the proof). *)
    let rec find_k k failure =
      if Q.lt failure p0 then k
      else if k >= max_copies then
        failwith
          (Printf.sprintf "Decondition: no k <= %d with (1 - P(psi))^k < p0 = %s" max_copies
             (Q.to_string p0))
      else find_k (k + 1) (Q.mul failure (Q.one_minus psi_prob))
    in
    let k = find_k 1 (Q.one_minus psi_prob) in
    let q = Q.one_minus (Q.pow (Q.one_minus psi_prob) k) in
    let q0 = Q.div (Q.sub (Q.add p0 q) Q.one) q in
    (* Facts of J: k tagged copies of I's facts, the certain order facts,
       and the bottom fact. *)
    let copy_facts =
      List.concat_map
        (fun (f, p) ->
          List.init k (fun i -> (Fact.make (rename (Fact.rel f)) (Value.Int (i + 1) :: Fact.args f), p)))
        (Ti.Finite.facts ti)
    in
    let order_facts =
      List.concat
        (List.init k (fun i ->
             List.filter_map
               (fun j -> if i + 1 <= j + 1 then Some (Fact.make order_relation [ Value.Int (i + 1); Value.Int (j + 1) ], Q.one) else None)
               (List.init k (fun j -> j))))
    in
    let bottom_fact = (Fact.make bottom_relation [], q0) in
    let schema' = product_schema (Ti.Finite.schema ti) in
    let ti' = Ti.Finite.make schema' (copy_facts @ order_facts @ [ bottom_fact ]) in
    (* The view Φ'. *)
    let all_bodies = List.map (fun (defn : View.def) -> defn.body) (View.defs view) in
    let iv = Fo.fresh_var "i" (psi :: all_bodies) in
    let jv = Fo.fresh_var "j" (psi :: all_bodies) in
    let suitable x = Fo.And (index_guard (Fo.v x), Surgery.relativize ~rename ~tag:(Fo.v x) psi) in
    let min_suitable x =
      Fo.And
        (suitable x, Fo.Forall (jv, Fo.Implies (suitable jv, Fo.atom order_relation [ Fo.v x; Fo.v jv ])))
    in
    let is_rep = Fo.Exists (iv, suitable iv) in
    let represents_d0 = Fo.Or (Fo.Not is_rep, Fo.atom bottom_relation []) in
    let view' =
      View.make
        (List.map
           (fun (defn : View.def) ->
             let head_terms = List.map Fo.v defn.head in
             let d0_tuples = Instance.to_list (Instance.restrict_rel defn.rel d0) in
             let member_d0 =
               Fo.disj
                 (List.map (fun f -> Fo.eq_tuple head_terms (List.map Fo.c (Fact.args f))) d0_tuples)
             in
             let extract =
               Fo.Exists (iv, Fo.And (min_suitable iv, Surgery.relativize ~rename ~tag:(Fo.v iv) defn.body))
             in
             let body =
               Fo.Or (Fo.And (represents_d0, member_d0), Fo.And (Fo.Not represents_d0, extract))
             in
             (defn.rel, defn.head, body))
           (View.defs view))
    in
    { ti'; view'; copies = k; d0; p0; psi_prob; q0 }
  end

let verify input output =
  let d = target input in
  let expanded = Ti.Finite.to_finite_pdb output.ti' in
  let image = Finite_pdb.map_view output.view' expanded in
  Finite_pdb.equal image d
