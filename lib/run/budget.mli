(** Cooperative resource budgets.

    A budget carries up to three limits — a wall-clock deadline, a step
    (term-evaluation) budget, and a cancellation flag — and is threaded
    through long-running certified computations ([Series.sum_budgeted],
    [Criteria.check_series], [Classifier.classify]). The computation calls
    {!check} once per unit of work; when any limit trips, the computation
    stops and degrades to a {e certified partial verdict} carrying whatever
    evidence was accumulated, rather than hanging or crashing.

    A single budget may be shared across several checks (the classifier
    passes one budget through all its moment and criterion probes), so the
    step count is cumulative across calls. Budgets are domain-safe: the
    step counter is an [Atomic.t] and the first exhaustion to trip is
    latched atomically, so a budget shared across a pool of domains cannot
    under-count steps or miss a cancellation. The parallel series engines
    consume steps in chunk-sized blocks via {!reserve} (on the admitting
    domain, in chunk order — keeping step exhaustion deterministic) and
    poll the deadline/cancel flag from workers via {!poll}. *)

type t

val unlimited : t
(** Never trips. {!check} on it costs one branch. *)

val make : ?timeout:float -> ?max_steps:int -> ?cancel:(unit -> bool) -> unit -> t
(** [make ~timeout ~max_steps ~cancel ()]: the deadline is [timeout]
    seconds of wall-clock time from the call to [make]; [max_steps] bounds
    the number of steps consumed via {!check} and {!reserve}; [cancel] is
    polled periodically and trips the budget when it returns [true].
    Omitted limits never trip.
    @raise Invalid_argument if [timeout] or [max_steps] is not positive. *)

val check : t -> (unit, Error.exhaustion) result
(** Consume one step. [Error] reports the first limit that tripped; once a
    budget has tripped, every later [check] reports that same exhaustion
    (the budget does not reset). The wall clock and the cancellation flag
    are polled every few steps, so a deadline is detected within a small
    bounded number of term evaluations. *)

val reserve : t -> int -> (int, Error.exhaustion) result
(** [reserve t n] atomically consumes up to [n] steps and returns the
    number granted: [n] itself while the step budget allows, or the
    positive remainder when fewer than [n] steps are left (a partial grant
    drains the step budget and trips it, so it is always the final grant). Returns [Error]
    when the budget has already tripped, when no steps remain, when the
    deadline has passed, or when cancellation is requested. The parallel
    engines call this once per chunk, from a single admitting domain in
    chunk order, so the index at which a step budget exhausts is a
    deterministic function of the chunk plan and the limit — independent
    of worker count and scheduling.
    @raise Invalid_argument if [n < 1]. *)

val poll : t -> (unit, Error.exhaustion) result
(** Check the deadline, cancellation flag, and latched trip without
    consuming a step. Used by chunk workers whose steps were reserved up
    front, so a timeout or cancel still drains the fan-out promptly. *)

val steps_used : t -> int
(** Number of steps consumed so far (via {!check} and {!reserve}). *)

val elapsed : t -> float
(** Wall-clock seconds since [make] (0. for {!unlimited}). *)

val is_unlimited : t -> bool
