(** Section 6: incomplete databases and logical (non-)representability.

    An incomplete database (IDB) is a set of instances; the induced IDB of a
    PDB is its set of possible worlds. This module provides:

    - Observation 6.1 (the IDBs induced by TI-PDBs),
    - Observation 6.2 / Proposition 6.3 (views commute with [IDB(·)] — used
      as tested laws),
    - Proposition 6.4 (mutually exclusive facts obstruct {e monotone} views
      of TI-PDBs),
    - Lemma 6.5 (every countable IDB underlies {e some} PDB in [FO(TI)]:
      the [x_i = (2^{-i}/|D_i|)^{|D_i|}] probability assignment), and
    - Lemma 6.6 / Theorem 6.7 (unbounded IDBs also underlie PDBs with
      infinite expected size, hence outside [FO(TI)]): representability of
      a PDB with unbounded-size worlds can never be decided by the sample
      space alone. *)

(** A countable incomplete database, enumerated. *)
type t = {
  name : string;
  schema : Ipdb_relational.Schema.t;
  instance : int -> Ipdb_relational.Instance.t;  (** injective *)
  size : int -> int;  (** closed-form [|D_n|], cf. {!Ipdb_pdb.Family.t} *)
  start : int;
}

val make :
  name:string ->
  schema:Ipdb_relational.Schema.t ->
  instance:(int -> Ipdb_relational.Instance.t) ->
  ?size:(int -> int) ->
  ?start:int ->
  unit ->
  t
(** [size] defaults to materialising the instance. *)

val of_family : Ipdb_pdb.Family.t -> t
(** The induced IDB of a countable PDB with everywhere-positive
    probabilities. *)

val induced_of_finite : Ipdb_pdb.Finite_pdb.t -> Ipdb_relational.Instance.t list
(** [IDB(D)] for finite [D]: the possible worlds. *)

val ti_induced_member : Ipdb_pdb.Ti.Finite.t -> Ipdb_relational.Instance.t -> bool
(** Observation 6.1 membership test: contains all always-facts, only
    fact-set facts. *)

val max_size_on : t -> upto:int -> int

(** {1 Proposition 6.4} *)

type exclusion_witness = {
  fact1 : Ipdb_relational.Fact.t;
  fact2 : Ipdb_relational.Fact.t;
}

val prop64_obstruction : Ipdb_pdb.Finite_pdb.t -> exclusion_witness option
(** Two facts of positive marginal that never co-occur. If present, the PDB
    is not a monotone (in particular not a UCQ-) view of any TI-PDB. *)

(** {1 Lemma 6.5} *)

val lemma65_weight : size:int -> index:int -> Ipdb_bignum.Q.t
(** [x_i = (2^{-i} / |D_i|)^{|D_i|}] ([1] for the empty instance) — exact. *)

val lemma65_family : t -> Ipdb_pdb.Family.t
(** The PDB of Lemma 6.5 on the given IDB: probabilities proportional to
    the [x_i] (exact unnormalised weights; float probabilities use a
    certified enclosure of the normaliser [x = Σ x_i]). Its Theorem 5.3
    series for [c = 1] is certified convergent by
    {!lemma65_criterion_cert}, so the PDB is in [FO(TI)]. *)

val lemma65_criterion_cert : t -> upto:int -> Criteria.certificate
(** Tail certificate for the (unnormalised) Theorem 5.3 series of
    {!lemma65_family}: the proof's bound [term_i <= 2^{-i}]. *)

(** {1 Lemma 6.6 and Theorem 6.7} *)

val lemma66_family : t -> subsequence_upto:int -> Ipdb_pdb.Family.t
(** A PDB on (a sub-enumeration of) the IDB with infinite expected size:
    worlds of strictly increasing size get probability [c/k²], the rest
    share the remaining mass as [c'/m²] (searching the first
    [subsequence_upto] indices for the increasing-size subsequence).
    @raise Invalid_argument when no strictly increasing size subsequence of
    length 3 exists in the searched prefix (IDB looks bounded). *)

val lemma66_divergence_cert : Criteria.certificate
(** Divergence certificate for the expected-size series of
    {!lemma66_family} when the IDB's sizes strictly increase along the
    enumeration (heavy worlds then sit at the odd indices, by the
    alternation {!lemma66_family} uses to keep the light subsequence
    infinite): the harmonic minorant [c/k] along that subsequence. *)

val lemma66_divergence_cert_for : ?search_limit:int -> t -> Criteria.certificate
(** General version: locates the heavy subsequence of the given IDB lazily
    and certifies the harmonic minorant along it. The scan for the next
    heavy world is capped at [search_limit] (default 200000) indices so a
    saturating size function cannot make it diverge. *)

type dichotomy =
  | Bounded_hence_representable of int  (** Theorem 6.7, first branch: size bound. *)
  | Unbounded_hence_undetermined of {
      in_foti : Ipdb_pdb.Family.t;  (** Lemma 6.5 assignment. *)
      not_in_foti : Ipdb_pdb.Family.t;  (** Lemma 6.6 assignment. *)
    }

val theorem67 : t -> upto:int -> dichotomy
(** Decides the (prefix-observable) branch of Theorem 6.7: if the sizes seen
    up to [upto] are bounded and the caller asserts the IDB is
    size-bounded, every probability assignment is representable
    (Corollary 5.4); otherwise both witnesses are produced. The size
    inspection is necessarily a prefix heuristic — boundedness of an
    enumerated IDB is not decidable — so the caller chooses [upto]. *)
