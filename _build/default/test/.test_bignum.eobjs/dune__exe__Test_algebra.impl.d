test/test_algebra.ml: Alcotest Ipdb_logic Ipdb_relational List Option QCheck QCheck_alcotest String
