module Env = Ipdb_env.Env

type kind =
  | Null
  | Memory of string list ref
  | File of { fd : Env.fd; fsync : bool; mutable open_ : bool }

type t = { kind : kind; lock : Mutex.t }

let null = { kind = Null; lock = Mutex.create () }

let memory () =
  let lines = ref [] in
  let t = { kind = Memory lines; lock = Mutex.create () } in
  let read () =
    Mutex.lock t.lock;
    let ls = List.rev !lines in
    Mutex.unlock t.lock;
    ls
  in
  (t, read)

let open_jsonl ?(fsync = false) path =
  let env = Env.current () in
  match env.Env.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | fd -> Ok { kind = File { fd; fsync; open_ = true }; lock = Mutex.create () }
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "cannot open trace file %s: %s" path (Unix.error_message err))

let current : t option Atomic.t = Atomic.make None

let close t =
  Mutex.lock t.lock;
  (match t.kind with
  | File f when f.open_ ->
    f.open_ <- false;
    (try f.fd.Env.fsync () with Unix.Unix_error _ -> ());
    (try f.fd.Env.close () with Unix.Unix_error _ -> ())
  | _ -> ());
  Mutex.unlock t.lock

let install t = Atomic.set current (Some t)

let uninstall () =
  match Atomic.exchange current None with
  | Some t -> close t
  | None -> ()

let active () = Atomic.get current <> None

(* One write(2) per line: concurrent emitters cannot interleave bytes,
   and a crash tears at most the final line (the schema validator and
   any reader must tolerate a torn tail, as with the journal). The
   EINTR-safe loop lives in [Ioutil], shared with the journal and
   checkpoint writers. *)
let write_all = Ioutil.write_all

let emit_line line =
  match Atomic.get current with
  | None -> ()
  | Some t -> (
    Mutex.lock t.lock;
    match t.kind with
    | Null -> Mutex.unlock t.lock
    | Memory lines ->
      lines := line :: !lines;
      Mutex.unlock t.lock
    | File f ->
      (if f.open_ then
         try
           write_all f.fd (line ^ "\n");
           if f.fsync then f.fd.Env.fsync ()
         with Unix.Unix_error _ | Sys_error _ ->
           (* A failing trace must not fail the traced run: drop the
              sink and keep going. *)
           f.open_ <- false;
           Atomic.set current None);
      Mutex.unlock t.lock)
