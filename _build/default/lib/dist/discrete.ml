module Q = Ipdb_bignum.Q
module Series = Ipdb_series.Series
module Interval = Ipdb_series.Interval

type support =
  | Finite of int list
  | Naturals_from of int

type t = {
  name : string;
  support : support;
  pmf : int -> float;
  pmf_q : (int -> Q.t) option;
  mean : float;
  tail : Series.Tail.t;
}

let make ~name ~support ~pmf ?pmf_q ~mean ~tail () = { name; support; pmf; pmf_q; mean; tail }

let point k =
  make ~name:(Printf.sprintf "point(%d)" k) ~support:(Finite [ k ])
    ~pmf:(fun n -> if n = k then 1.0 else 0.0)
    ~pmf_q:(fun n -> if n = k then Q.one else Q.zero)
    ~mean:(float_of_int k)
    ~tail:(Series.Tail.Finite_support { last = k })
    ()

let uniform ks =
  if ks = [] then invalid_arg "Discrete.uniform: empty support";
  let ks = List.sort_uniq Stdlib.compare ks in
  let n = List.length ks in
  let p = 1.0 /. float_of_int n in
  let pq = Q.of_ints 1 n in
  let last = List.fold_left Stdlib.max min_int ks in
  make ~name:"uniform" ~support:(Finite ks)
    ~pmf:(fun k -> if List.mem k ks then p else 0.0)
    ~pmf_q:(fun k -> if List.mem k ks then pq else Q.zero)
    ~mean:(List.fold_left (fun acc k -> acc +. float_of_int k) 0.0 ks /. float_of_int n)
    ~tail:(Series.Tail.Finite_support { last })
    ()

let bernoulli p =
  if not (Q.is_probability p) then invalid_arg "Discrete.bernoulli: not a probability";
  let pf = Q.to_float p in
  make ~name:"bernoulli" ~support:(Finite [ 0; 1 ])
    ~pmf:(fun k -> if k = 1 then pf else if k = 0 then 1.0 -. pf else 0.0)
    ~pmf_q:(fun k -> if k = 1 then p else if k = 0 then Q.one_minus p else Q.zero)
    ~mean:pf
    ~tail:(Series.Tail.Finite_support { last = 1 })
    ()

let poisson lambda =
  if lambda <= 0.0 then invalid_arg "Discrete.poisson: rate must be positive";
  let pmf k =
    if k < 0 then 0.0
    else begin
      (* exp(-λ) λ^k / k! computed in log space for stability *)
      let rec log_fact acc i = if i <= 1 then acc else log_fact (acc +. log (float_of_int i)) (i - 1) in
      exp ((float_of_int k *. log lambda) -. lambda -. log_fact 0.0 k)
    end
  in
  (* For k >= 2λ the ratio λ/(k+1) <= 1/2, so the terms are dominated by a
     geometric with ratio 1/2 starting at k0 = max(1, ⌈2λ⌉). *)
  let k0 = Stdlib.max 1 (int_of_float (ceil (2.0 *. lambda))) in
  make
    ~name:(Printf.sprintf "poisson(%g)" lambda)
    ~support:(Naturals_from 0) ~pmf ~mean:lambda
    ~tail:(Series.Tail.Geometric { index = k0; first = pmf k0; ratio = 0.5 })
    ()

let geometric p =
  if not (Q.is_probability p) || Q.is_zero p then invalid_arg "Discrete.geometric: need 0 < p <= 1";
  let pf = Q.to_float p in
  let q = Q.one_minus p in
  let qf = Q.to_float q in
  make ~name:"geometric" ~support:(Naturals_from 0)
    ~pmf:(fun k -> if k < 0 then 0.0 else pf *. (qf ** float_of_int k))
    ~pmf_q:(fun k -> if k < 0 then Q.zero else Q.mul p (Q.pow q k))
    ~mean:(qf /. pf)
    ~tail:(Series.Tail.Geometric { index = 0; first = pf; ratio = qf })
    ()

let basel () =
  let c = 6.0 /. (Float.pi *. Float.pi) in
  make ~name:"basel" ~support:(Naturals_from 1)
    ~pmf:(fun n -> if n < 1 then 0.0 else c /. (float_of_int n *. float_of_int n))
    ~mean:Float.infinity
    ~tail:(Series.Tail.P_series { index = 1; coeff = c; p = 2.0 })
    ()

let first_index t = match t.support with Finite ks -> List.fold_left Stdlib.min max_int ks | Naturals_from n -> n

let total_mass_check t ~upto = Series.sum ~start:(first_index t) t.pmf ~tail:t.tail ~upto

let mass_outside t n =
  match t.support with
  | Finite ks -> if List.for_all (fun k -> k <= n) ks then 0.0 else Series.Tail.bound_from t.tail (n + 1)
  | Naturals_from _ ->
    (* If the certificate only applies from a later index, bridge the gap
       with the explicit terms. *)
    let i0 = Series.Tail.start_index t.tail in
    if n + 1 >= i0 then Series.Tail.bound_from t.tail (n + 1)
    else begin
      let bridge = ref 0.0 in
      for k = n + 1 to i0 - 1 do
        bridge := !bridge +. t.pmf k
      done;
      !bridge +. Series.Tail.bound_from t.tail i0
    end

let sample t rng =
  let u = Random.State.float rng 1.0 in
  match t.support with
  | Finite ks ->
    let rec go acc = function
      | [] -> List.nth ks (List.length ks - 1)
      | [ k ] -> k
      | k :: rest ->
        let acc = acc +. t.pmf k in
        if u < acc then k else go acc rest
    in
    go 0.0 ks
  | Naturals_from n0 ->
    let rec go acc k =
      let acc = acc +. t.pmf k in
      if u < acc || acc >= 1.0 -. 1e-12 then k else go acc (k + 1)
    in
    go 0.0 n0

let mean_check t ~upto ~mean_tail =
  Series.sum ~start:(first_index t) (fun n -> float_of_int n *. t.pmf n) ~tail:mean_tail ~upto
