test/test_safe_range.mli:
