(** Arbitrary-precision rational numbers.

    Values are kept in lowest terms with a positive denominator, so
    structural equality coincides with numeric equality. These are the exact
    probabilities used throughout the library: the paper's constructions
    (Theorems 4.1 and 5.9, Corollary 5.4, the finite completeness theorem)
    are verified as {e equalities} of distributions in this type. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction and destruction} *)

val make : Zint.t -> Zint.t -> t
(** [make num den] is the normalised fraction [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero when [b = 0]. *)

val of_ints_reduced : int -> int -> t
(** [of_ints_reduced n d] builds [n/d] {e without} normalising, for parts
    already known coprime with [d > 0] (typically extracted from a
    normalised rational, as in the kb store's marginal columns). The
    coprimality contract is re-verified under [IPDB_ARITH_REFERENCE=1]
    so misuse fails loudly there. @raise Invalid_argument when [d <= 0]
    (or, in reference mode, when the parts share a factor). *)

val of_zint : Zint.t -> t
val of_nat : Nat.t -> t

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal notation ["1.25"], with optional
    sign. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. *)

val to_decimal_string : ?digits:int -> t -> string
(** Decimal expansion truncated to [digits] (default 12) fractional
    digits. *)

val to_float : t -> float
val num : t -> Zint.t
val den : t -> Nat.t

val of_float_exact : float -> t
(** Exact rational value of a finite float.
    @raise Invalid_argument on NaN or infinities. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool

val is_probability : t -> bool
(** [0 <= q <= 1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val pow : t -> int -> t
(** Integer powers, negative exponents allowed on nonzero values. *)

val one_minus : t -> t
(** [1 - q]; the complement of a probability. *)

val sum : t list -> t
(** Exact sum. In fast mode the fold runs through {!Accum} (batched GCD
    normalisation); the result is identical to the eager left fold. *)

val prod : t list -> t

val mediant : t -> t -> t
(** [(a+c)/(b+d)] for [a/b] and [c/d]; lies strictly between them. *)

(** {1 Filtered and batched helpers}

    These exist for the series/kb hot paths. Every one of them is exact:
    the float filter may only {e accelerate} a decision (falling back to
    exact cross-multiplication whenever its interval straddles the
    boundary), and the batched accumulator commits the same canonical
    rational as an eagerly normalised fold. *)

(** Certified float enclosures of rationals. [compare_opt]/[sign_opt]
    answer [Some _] only when the enclosures are disjoint from the
    decision boundary; [None] means "undecided — use exact arithmetic". *)
module Filter : sig
  type q := t
  type t = { lo : float; hi : float }

  val of_q : q -> t
  (** Sound enclosure: the exact value always lies in [[lo, hi]]. Values
      outside the comfortably-normal float range get the infinite
      interval (never a wrong answer, just no acceleration). *)

  val compare_opt : t -> t -> int option
  val sign_opt : t -> int option
end

(** Mutable partial sum with lazy, batched GCD normalisation. The
    running numerator/denominator are left unnormalised until the
    denominator outgrows an internal bit threshold; [total] performs the
    final normalisation. Under [IPDB_ARITH_REFERENCE=1] every [add]
    normalises eagerly instead. *)
module Accum : sig
  type q := t
  type t

  val create : unit -> t
  (** An accumulator holding zero. *)

  val of_q : q -> t
  val add : t -> q -> unit
  val sub : t -> q -> unit

  val total : t -> q
  (** The normalised value of the sum so far (the accumulator remains
      usable). Equal to the eagerly-normalised fold of the same
      operations, bit for bit. *)
end

(** Memoised integer powers of a fixed base, for the [∏ qᵢ] and
    [2^(-i²)] families in the zoo and the geometric tails in
    [lib/series]. Domain-safe: the table is an immutable array behind an
    [Atomic], grown by copy-and-CAS, so concurrent readers never observe
    a partial state (a lost race merely recomputes). *)
module Powtab : sig
  type q := t
  type t

  val create : q -> t
  val base : t -> q

  val pow : t -> int -> q
  (** [pow t k] is [base^k], canonical and identical to [Q.pow base k];
      negative exponents supported on nonzero bases. Memoisation is
      disabled under [IPDB_ARITH_REFERENCE=1]. *)
end

(** The eager/unfiltered reference implementations (original
    algorithms: one full-width GCD per operation, exact
    cross-multiplication compare, frexp-based float conversion). Used by
    the differential suite; [IPDB_ARITH_REFERENCE=1] forces the whole
    library onto these paths. *)
module Reference : sig
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val compare : t -> t -> int
  val sum : t list -> t
  val to_float : t -> float
end

(** {1 Operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

val pp : Format.formatter -> t -> unit
