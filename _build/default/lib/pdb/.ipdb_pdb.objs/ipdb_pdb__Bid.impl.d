lib/pdb/bid.ml: Finite_pdb Format Hashtbl Ipdb_bignum Ipdb_dist Ipdb_relational Ipdb_series List Random Stdlib Ti Worlds
