module Value = Ipdb_relational.Value
module Instance = Ipdb_relational.Instance
module Fact = Ipdb_relational.Fact
module Env = Map.Make (String)

type env = Value.t Env.t

let env_of_list l = List.fold_left (fun acc (k, v) -> Env.add k v acc) Env.empty l

module VSet = Set.Make (Value)

let domain_of ?(extra = []) inst phi =
  let s = VSet.of_list (Instance.adom inst) in
  let s = List.fold_left (fun acc v -> VSet.add v acc) s (Fo.constants phi) in
  let s = List.fold_left (fun acc v -> VSet.add v acc) s extra in
  VSet.elements s

let term_value env = function
  | Fo.C v -> v
  | Fo.V x -> (
    match Env.find_opt x env with
    | Some v -> v
    | None -> invalid_arg ("Eval: unbound variable " ^ x))

(* ------------------------------------------------------------------ *)
(* Reference evaluator: plain active-domain semantics.                 *)
(* ------------------------------------------------------------------ *)

let rec eval_naive ~domain inst env (phi : Fo.t) =
  match phi with
  | True -> true
  | False -> false
  | Atom (r, args) -> Instance.mem (Fact.make r (List.map (term_value env) args)) inst
  | Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
  | Not f -> not (eval_naive ~domain inst env f)
  | And (f, g) -> eval_naive ~domain inst env f && eval_naive ~domain inst env g
  | Or (f, g) -> eval_naive ~domain inst env f || eval_naive ~domain inst env g
  | Implies (f, g) -> (not (eval_naive ~domain inst env f)) || eval_naive ~domain inst env g
  | Iff (f, g) -> eval_naive ~domain inst env f = eval_naive ~domain inst env g
  | Exists (x, f) -> List.exists (fun v -> eval_naive ~domain inst (Env.add x v env) f) domain
  | Forall (x, f) -> List.for_all (fun v -> eval_naive ~domain inst (Env.add x v env) f) domain

(* ------------------------------------------------------------------ *)
(* Optimised evaluator.                                                *)
(*                                                                     *)
(* Quantifier blocks whose matrix contains atoms are evaluated by      *)
(* unifying the atoms against the instance's facts instead of ranging  *)
(* over the full domain — the formulas produced by the paper's         *)
(* constructions (chain-completeness, copy-suitability, block          *)
(* structure) all have this shape, and naive evaluation would be       *)
(* |domain|^k for atom arity k. Equivalence with [eval_naive] is       *)
(* property-tested.                                                    *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

let rec conjuncts = function
  | Fo.And (f, g) -> conjuncts f @ conjuncts g
  | f -> [ f ]

(* Unify atom argument terms against a fact's values. [bindable] are the
   quantified variables of the current block; everything else must already
   be bound (or be a constant). Returns the extended environment. *)
let unify_args env bindable args values =
  let rec go env args values =
    match (args, values) with
    | [], [] -> Some env
    | a :: args, v :: values -> (
      match a with
      | Fo.C c -> if Value.equal c v then go env args values else None
      | Fo.V x -> (
        match Env.find_opt x env with
        | Some bound -> if Value.equal bound v then go env args values else None
        | None ->
          if SSet.mem x bindable then go (Env.add x v env) args values
          else None))
    | _ -> None
  in
  go env args values

(* Variables of an atom's arguments that are not yet bound. *)
let unbound_atom_vars env args =
  List.filter_map
    (fun t -> match t with Fo.V x when not (Env.mem x env) -> Some x | Fo.V _ | Fo.C _ -> None)
    args

let rec eval ~domain inst env (phi : Fo.t) =
  match phi with
  | True -> true
  | False -> false
  | Atom (r, args) -> Instance.mem (Fact.make r (List.map (term_value env) args)) inst
  | Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
  | Not f -> not (eval ~domain inst env f)
  | And (f, g) -> eval ~domain inst env f && eval ~domain inst env g
  | Or (f, g) -> eval ~domain inst env f || eval ~domain inst env g
  | Implies (f, g) -> (not (eval ~domain inst env f)) || eval ~domain inst env g
  | Iff (f, g) -> eval ~domain inst env f = eval ~domain inst env g
  | Exists _ ->
    let rec peel acc = function
      | Fo.Exists (x, f) -> peel (x :: acc) f
      | f -> (List.rev acc, f)
    in
    let vars, body = peel [] phi in
    (* The block variables shadow any outer bindings of the same names. *)
    let env = List.fold_left (fun e x -> Env.remove x e) env vars in
    eval_exists ~domain inst env (SSet.of_list vars) vars body
  | Forall _ ->
    let rec peel acc = function
      | Fo.Forall (x, f) -> peel (x :: acc) f
      | f -> (List.rev acc, f)
    in
    let vars, body = peel [] phi in
    let env = List.fold_left (fun e x -> Env.remove x e) env vars in
    eval_forall ~domain inst env (SSet.of_list vars) vars body

(* ∃ block: try to drive the search by an atom conjunct whose unbound
   variables are all block variables. *)
and eval_exists ~domain inst env bindable vars body =
  if vars = [] then eval ~domain inst env body
  else begin
    let cs = conjuncts body in
    let usable =
      List.find_opt
        (fun c ->
          match c with
          | Fo.Atom (_, args) -> List.for_all (fun x -> SSet.mem x bindable) (unbound_atom_vars env args)
          | _ -> false)
        cs
    in
    match usable with
    | Some (Fo.Atom (r, args) as chosen) ->
      let rest = Fo.conj (List.filter (fun c -> c != chosen) cs) in
      let new_vars = unbound_atom_vars env args in
      if new_vars = [] then
        (* pure guard *)
        if eval ~domain inst env chosen then eval_exists ~domain inst env bindable vars rest else false
      else
        Instance.exists
          (fun f ->
            String.equal (Fact.rel f) r
            &&
            match unify_args env bindable args (Fact.args f) with
            | None -> false
            | Some env' ->
              let vars' = List.filter (fun x -> not (Env.mem x env')) vars in
              eval_exists ~domain inst env' bindable vars' rest)
          inst
    | _ -> (
      match vars with
      | [] -> eval ~domain inst env body
      | x :: vars' ->
        (* Skipping a variable absent from the body is only sound over a
           non-empty domain: over the empty domain ∃x.ψ is false outright. *)
        if domain <> [] && not (List.mem x (Fo.free_vars body)) then
          eval_exists ~domain inst env bindable vars' body
        else
          List.exists
            (fun v -> eval_exists ~domain inst (Env.add x v env) bindable vars' body)
            domain)
  end

(* ∀ block with an implication body: tuples falsifying an atom hypothesis
   satisfy the implication vacuously, so only fact-matching bindings need to
   be checked. *)
and eval_forall ~domain inst env bindable vars body =
  if vars = [] then eval ~domain inst env body
  else begin
    match body with
    | Fo.Implies (lhs, rhs) -> (
      let cs = conjuncts lhs in
      let usable =
        List.find_opt
          (fun c ->
            match c with
            | Fo.Atom (_, args) -> List.for_all (fun x -> SSet.mem x bindable) (unbound_atom_vars env args)
            | _ -> false)
          cs
      in
      match usable with
      | Some (Fo.Atom (r, args) as chosen) ->
        let rest_lhs = Fo.conj (List.filter (fun c -> c != chosen) cs) in
        let new_vars = unbound_atom_vars env args in
        if new_vars = [] then
          if eval ~domain inst env chosen then
            eval_forall ~domain inst env bindable vars (Fo.Implies (rest_lhs, rhs))
          else true
        else
          Instance.for_all
            (fun f ->
              (not (String.equal (Fact.rel f) r))
              ||
              match unify_args env bindable args (Fact.args f) with
              | None -> true
              | Some env' ->
                let vars' = List.filter (fun x -> not (Env.mem x env')) vars in
                eval_forall ~domain inst env' bindable vars' (Fo.Implies (rest_lhs, rhs)))
            inst
      | _ -> forall_naive_step ~domain inst env bindable vars body)
    | _ -> forall_naive_step ~domain inst env bindable vars body
  end

and forall_naive_step ~domain inst env bindable vars body =
  match vars with
  | [] -> eval ~domain inst env body
  | x :: vars' ->
    (* Over the empty domain ∀x.ψ is vacuously true — do not skip x. *)
    if domain <> [] && not (List.mem x (Fo.free_vars body)) then
      eval_forall ~domain inst env bindable vars' body
    else List.for_all (fun v -> eval_forall ~domain inst (Env.add x v env) bindable vars' body) domain

let holds ?extra inst phi =
  if not (Fo.is_sentence phi) then invalid_arg "Eval.holds: formula has free variables";
  eval ~domain:(domain_of ?extra inst phi) inst Env.empty phi

let holds_naive ?extra inst phi =
  if not (Fo.is_sentence phi) then invalid_arg "Eval.holds_naive: formula has free variables";
  eval_naive ~domain:(domain_of ?extra inst phi) inst Env.empty phi

let satisfying ?extra inst vars phi =
  let fvs = Fo.free_vars phi in
  List.iter
    (fun x -> if not (List.mem x vars) then invalid_arg ("Eval.satisfying: free variable not covered: " ^ x))
    fvs;
  let domain = domain_of ?extra inst phi in
  let rec go env = function
    | [] -> if eval ~domain inst env phi then [ List.map (fun x -> Env.find x env) vars ] else []
    | x :: rest -> List.concat_map (fun v -> go (Env.add x v env) rest) domain
  in
  go Env.empty vars
