lib/core/classifier.mli: Ipdb_series Zoo
