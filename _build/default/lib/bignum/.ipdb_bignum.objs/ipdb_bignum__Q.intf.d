lib/bignum/q.mli: Format Nat Zint
