(** Countably infinite PDBs presented as enumerated families.

    A family gives the [n]-th possible world and its probability; together
    with a certificate that the probabilities sum (to 1) this is a faithful,
    lazily-evaluated countable PDB (Definition 2.1). The named PDBs of the
    paper — Examples 3.5, 3.9, 5.5, 5.6 — are all of this shape; see
    [Ipdb_core.Zoo].

    Quantities of interest are series: the module exposes the relevant term
    functions, which combine with per-family certificates (supplied where
    each family is defined) through [Ipdb_series.Series]. *)

type t = {
  name : string;
  schema : Ipdb_relational.Schema.t;
  instance : int -> Ipdb_relational.Instance.t;
      (** Injective enumeration of the possible worlds. *)
  prob : int -> float;
  prob_q : (int -> Ipdb_bignum.Q.t) option;
      (** Exact (possibly unnormalised) weights, when rational — allows
          exact truncation. *)
  size : int -> int;
      (** [|D_n|] in closed form. Families like Example 3.5 have worlds of
          size [2^n]: the size must be computable without materialising the
          world, or every moment series would be intractable. Must agree
          with [Instance.size (instance n)] wherever the instance is
          materialisable (tested). *)
  start : int;
  prob_tail : Ipdb_series.Series.Tail.t;
      (** Certificate that [Σ prob] converges (the family is a probability
          space). *)
}

val make :
  name:string ->
  schema:Ipdb_relational.Schema.t ->
  instance:(int -> Ipdb_relational.Instance.t) ->
  prob:(int -> float) ->
  ?prob_q:(int -> Ipdb_bignum.Q.t) ->
  ?size:(int -> int) ->
  ?start:int ->
  prob_tail:Ipdb_series.Series.Tail.t ->
  unit ->
  t
(** When [size] is omitted it defaults to materialising the instance —
    fine for families whose worlds stay small. *)

val size : t -> int -> int
(** Size of the [n]-th world (closed form). *)

val total_probability : t -> upto:int -> (Ipdb_series.Interval.t, string) result
(** Certified enclosure of [Σ prob]; should contain 1. *)

val moment_term : t -> k:int -> int -> float
(** The term [|D_n|^k · P(D_n)] of the [k]-th size-moment series
    (Section 2, Instance Size). *)

val theorem53_term : t -> c:int -> int -> float
(** The term [|D_n| · P(D_n)^(c/|D_n|)] of the Theorem 5.3 criterion
    (0 for empty worlds, which the criterion excludes). *)

val truncate_exact : t -> n:int -> Finite_pdb.t
(** Conditioning on the first worlds: exact weights renormalised.
    @raise Invalid_argument when the family has no exact weights. *)

val truncate_float : t -> n:int -> Finite_pdb.t
(** Like {!truncate_exact} but converting float probabilities to nearby
    rationals before renormalising. *)

val domain_disjoint_on : t -> upto:int -> bool
(** Do the first worlds have pairwise disjoint active domains? (Hypothesis
    of Lemma 3.7.) *)

val max_domain_overlap_on : t -> upto:int -> int
(** The largest number of worlds among the first [upto] sharing any single
    active-domain element. Lemma 3.7 extends from disjoint domains to a
    bounded overlap (Remark 3.8); this measures that bound on a prefix
    ([1] iff {!domain_disjoint_on}). Worlds are materialised: keep [upto]
    small for large-world families. *)

val bounded_size_on : t -> upto:int -> bound:int -> bool
(** Do the first worlds have size at most [bound]? *)
