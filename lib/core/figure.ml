module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module View = Ipdb_logic.View
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Ti = Ipdb_pdb.Ti
module Bid = Ipdb_pdb.Bid

type status =
  | Verified
  | Failed of string

type edge = {
  lower : string;
  upper : string;
  label : string;
  strict : bool;
  status : status;
}

type diagram = {
  title : string;
  classes : string list;
  edges : edge list;
  equalities : (string list * string * status) list;
}

(* Each diagram check runs in its own span so a trace shows which edge
   or equality of the figure was being verified (DESIGN.md §9). *)
let check name f =
  Ipdb_obs.Trace.with_span "figure.check" ~attrs:[ ("name", Ipdb_obs.Json.String name) ]
  @@ fun () ->
  try if f () then Verified else Failed (name ^ ": check returned false")
  with e -> Failed (name ^ ": " ^ Printexc.to_string e)

let fact r args = Fact.make r (List.map (fun n -> Value.Int n) args)
let schema_r1 = Schema.make [ ("R", 1) ]

let sample_pdb () =
  Finite_pdb.make schema_r1
    [ (Instance.empty, Q.of_ints 1 4);
      (Instance.of_list [ fact "R" [ 1 ] ], Q.of_ints 1 4);
      (Instance.of_list [ fact "R" [ 1 ]; fact "R" [ 2 ] ], Q.half)
    ]

let sample_bid () =
  Bid.Finite.make schema_r1
    [ [ (fact "R" [ 1 ], Q.of_ints 1 3); (fact "R" [ 2 ], Q.of_ints 1 3) ];
      [ (fact "R" [ 3 ], Q.half) ]
    ]

let b3_image () =
  let ti, view = Zoo.example_b3 in
  Finite_pdb.map_view view (Ti.Finite.to_finite_pdb ti)

(* ------------------------------------------------------------------ *)
(* The individual checks                                               *)
(* ------------------------------------------------------------------ *)

let check_ti_in_bid () =
  check "TI as BID" (fun () ->
      let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.of_ints 1 3) ] in
      Finite_pdb.equal (Bid.Finite.to_finite_pdb (Bid.Finite.of_ti ti)) (Ti.Finite.to_finite_pdb ti))

let check_b2_not_ti () =
  check "Example B.2 not TI" (fun () ->
      not (Finite_pdb.is_tuple_independent (Bid.Finite.to_finite_pdb Zoo.example_b2)))

let check_b2_not_monotone_ti () =
  check "Example B.2 not CQ(TI) (Prop B.1 / Prop 6.4)" (fun () ->
      let d = Bid.Finite.to_finite_pdb Zoo.example_b2 in
      List.length (Finite_pdb.maximal_worlds d) = 2 && Idb.prop64_obstruction d <> None)

let check_b3_not_ti_nor_bid () =
  check "Example B.3 image not TI/BID" (fun () ->
      let image = b3_image () in
      let t = Fact.make "T" [ Value.Str "a"; Value.Str "b" ] in
      let t' = Fact.make "T" [ Value.Str "a"; Value.Str "a" ] in
      (not (Finite_pdb.is_tuple_independent image))
      && (not (Finite_pdb.is_bid image ~blocks:[ [ t ]; [ t' ] ]))
      && not (Finite_pdb.is_bid image ~blocks:[ [ t; t' ] ]))

let check_cq_eq_ucq () =
  check "UCQ view collapses to CQ (Prop B.4)" (fun () ->
      let ti, _ = Zoo.example_b3 in
      (* a genuine UCQ (non-CQ) view *)
      let view =
        View.make
          [ ("T", [ "x" ],
             Fo.Or
               ( Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]),
                 Fo.Exists ("y", Fo.atom "R" [ Fo.v "y"; Fo.v "x" ]) )) ]
      in
      let repr = Finite_complete.monotone_to_cq ti view in
      let original = Finite_pdb.map_view view (Ti.Finite.to_finite_pdb ti) in
      let rebuilt =
        Finite_pdb.map_view repr.Finite_complete.view (Ti.Finite.to_finite_pdb repr.Finite_complete.ti)
      in
      View.is_cq repr.Finite_complete.view && Finite_pdb.equal original rebuilt)

let check_fo_ti_complete () =
  check "PDB_fin = FO(TI_fin)" (fun () ->
      let d = sample_pdb () in
      Finite_complete.verify d (Finite_complete.represent d))

let check_cq_bid_complete () =
  check "PDB_fin = CQ(BID_fin)" (fun () ->
      let d = sample_pdb () in
      Finite_complete.verify_cq_bid d (Finite_complete.represent_cq_bid d))

let check_bid_in_foti () =
  check "BID ⊆ FO(TI) (Thm 5.9 + Thm 4.1)" (fun () ->
      let bid = sample_bid () in
      let out = Bid_repr.represent bid in
      Bid_repr.verify bid out
      &&
      let input =
        { Decondition.ti = out.Bid_repr.ti; condition = out.Bid_repr.condition; view = out.Bid_repr.view }
      in
      Decondition.verify input (Decondition.decondition input))

let check_deconditioning () =
  check "FO(TI|FO) = FO(TI) (Thm 4.1)" (fun () ->
      let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.of_ints 1 3) ] in
      let input =
        { Decondition.ti; condition = Fo.Exists ("x", Fo.atom "R" [ Fo.v "x" ]); view = View.identity schema_r1 }
      in
      Decondition.verify input (Decondition.decondition input))

let check_fo_compose () =
  check "FO(FO(TI)) = FO(TI) (view composition)" (fun () ->
      let ti = Ti.Finite.make (Schema.make [ ("R", 2) ]) [ (fact "R" [ 1; 2 ], Q.half); (fact "R" [ 2; 1 ], Q.of_ints 1 3) ] in
      let inner = View.make [ ("T", [ "x" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])) ] in
      let outer = View.make [ ("U", [], Fo.Exists ("x", Fo.atom "T" [ Fo.v "x" ])) ] in
      let d = Ti.Finite.to_finite_pdb ti in
      Finite_pdb.equal
        (Finite_pdb.map_view outer (Finite_pdb.map_view inner d))
        (Finite_pdb.map_view (View.compose outer inner) d))

let check_foti_proper () =
  check "FO(TI) ⊊ PDB (Example 3.5 via Prop 3.4)" (fun () ->
      let cf = Zoo.example_3_5 in
      match Criteria.moment_verdict cf.Zoo.family ~k:2 ~cert:(Option.get (cf.Zoo.moment_cert 2)) ~upto:50 with
      | Criteria.Infinite_sum _ -> true
      | _ -> false)

let check_bounded_in_foti () =
  check "bounded-size PDBs ⊆ FO(TI) (Cor 5.4)" (fun () ->
      let d = sample_pdb () in
      let out = Segmentation.bounded_size_representation d in
      out.Segmentation.exact && Segmentation.verify_exact d out)

(* ------------------------------------------------------------------ *)
(* The diagrams                                                        *)
(* ------------------------------------------------------------------ *)

(* Each distinct check runs exactly once — as a pool task when a pool is
   given — and the diagram is assembled from the results in a fixed order,
   so the rendered figure is identical for any worker count. *)
let run_checks ?pool checks =
  match pool with
  | None -> List.map (fun f -> f ()) checks
  | Some pool -> Ipdb_par.Pool.map_ordered pool ~f:(fun f -> f ()) checks

let both a b =
  match (a, b) with Verified, Verified -> Verified | Failed m, _ | _, Failed m -> Failed m

let figure1 ?pool () =
  match
    run_checks ?pool
      [ check_b3_not_ti_nor_bid; check_ti_in_bid; check_b2_not_ti; check_b2_not_monotone_ti;
        check_cq_eq_ucq; check_fo_ti_complete; check_cq_bid_complete ]
  with
  | [ b3; ti_in_bid; b2_not_ti; b2_not_mono; cq_eq_ucq; fo_ti; cq_bid ] ->
    {
      title = "Figure 1 — finite PDB classes";
      classes = [ "TI_fin"; "CQ(TI_fin) = UCQ(TI_fin)"; "BID_fin"; "PDB_fin = FO(TI_fin) = CQ(BID_fin)" ];
      edges =
        [ { lower = "TI_fin"; upper = "CQ(TI_fin)"; label = "identity view; strict by Ex. B.3"; strict = true; status = b3 };
          { lower = "TI_fin"; upper = "BID_fin"; label = "singleton blocks; strict by Ex. B.2"; strict = true; status = both ti_in_bid b2_not_ti };
          { lower = "CQ(TI_fin)"; upper = "PDB_fin"; label = "strict: Ex. B.2 ∉ CQ(TI_fin)"; strict = true; status = b2_not_mono };
          { lower = "BID_fin"; upper = "PDB_fin"; label = "strict: Ex. B.3 image ∉ BID_fin"; strict = true; status = b3 }
        ];
      equalities =
        [ ([ "CQ(TI_fin)"; "UCQ(TI_fin)" ], "Proposition B.4", cq_eq_ucq);
          ([ "PDB_fin"; "FO(TI_fin)" ], "completeness theorem [51]", fo_ti);
          ([ "PDB_fin"; "CQ(BID_fin)" ], "[16, 42]", cq_bid)
        ];
    }
  | _ -> assert false

let figure4 ?pool () =
  match
    run_checks ?pool
      [ check_b3_not_ti_nor_bid; check_b2_not_ti; check_b2_not_monotone_ti; check_bid_in_foti;
        check_foti_proper; check_deconditioning; check_fo_compose; check_bounded_in_foti ]
  with
  | [ b3; b2_not_ti; b2_not_mono; bid_in_foti; foti_proper; decond; fo_compose; bounded ] ->
    {
      title = "Figure 4 — countable PDB classes";
      classes = [ "TI"; "UCQ(TI)"; "BID"; "FO(TI) = FO(BID) = FO(TI|FO)"; "PDB" ];
      edges =
        [ { lower = "TI"; upper = "UCQ(TI)"; label = "identity view; strict by Ex. B.3"; strict = true; status = b3 };
          { lower = "TI"; upper = "BID"; label = "singleton blocks; strict by Ex. B.2"; strict = true; status = b2_not_ti };
          { lower = "UCQ(TI)"; upper = "FO(TI)"; label = "strict: BIDs with exclusive facts (Prop 6.4)"; strict = true; status = b2_not_mono };
          { lower = "BID"; upper = "FO(TI)"; label = "Theorem 5.9; strict by Ex. B.3 image"; strict = true; status = bid_in_foti };
          { lower = "FO(TI)"; upper = "PDB"; label = "strict: Ex. 3.5 (infinite 2nd moment)"; strict = true; status = foti_proper }
        ];
      equalities =
        [ ([ "FO(TI)"; "FO(TI|FO)" ], "Theorem 4.1", decond);
          ([ "FO(TI)"; "FO(BID)" ], "Thm 5.9 + FO(FO(TI)) = FO(TI)", both bid_in_foti fo_compose);
          ([ "bounded-size PDBs"; "⊆ FO(TI)" ], "Corollary 5.4", bounded)
        ];
    }
  | _ -> assert false

let all_verified d =
  List.for_all (fun e -> e.status = Verified) d.edges
  && List.for_all (fun (_, _, s) -> s = Verified) d.equalities

let status_mark = function Verified -> "✓" | Failed m -> "✗ (" ^ m ^ ")"

let to_text d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (d.title ^ "\n");
  Buffer.add_string buf (String.make (String.length d.title) '-' ^ "\n");
  Buffer.add_string buf "classes:\n";
  List.iter (fun c -> Buffer.add_string buf ("  " ^ c ^ "\n")) d.classes;
  Buffer.add_string buf "inclusions (lower ⊆ upper):\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %s %s   [%s] %s\n" e.lower (if e.strict then "⊊" else "⊆") e.upper e.label
           (status_mark e.status)))
    d.edges;
  Buffer.add_string buf "equalities:\n";
  List.iter
    (fun (cls, label, s) ->
      Buffer.add_string buf (Printf.sprintf "  %s   [%s] %s\n" (String.concat " = " cls) label (status_mark s)))
    d.equalities;
  Buffer.contents buf

let to_dot d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph hasse {\n  rankdir=BT;\n  node [shape=box];\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s %s\"];\n" e.lower e.upper e.label (status_mark e.status)))
    d.edges;
  List.iter
    (fun (cls, label, s) ->
      match cls with
      | a :: rest ->
        List.iter
          (fun b ->
            Buffer.add_string buf
              (Printf.sprintf "  \"%s\" -> \"%s\" [dir=both, style=dashed, label=\"%s %s\"];\n" a b label
                 (status_mark s)))
          rest
      | [] -> ())
    d.equalities;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
