(* The paper's motivating example (Section 1): a table of car-accident
   counts per country where each count is noisy, modelled by a Poisson
   distribution. This is an infinite BID-PDB — one block per country, the
   block's alternative facts being the possible counts — and Theorem 5.9
   says it is representable as an FO-view over a TI-PDB. We run the
   Lemma 5.7 construction on a TV-bounded truncation and verify it exactly.

   Run with: dune exec examples/car_accidents.exe *)

module Q = Ipdb_bignum.Q
module Instance = Ipdb_relational.Instance
module Interval = Ipdb_series.Interval
module Bid = Ipdb_pdb.Bid
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Zoo = Ipdb_core.Zoo
module Bid_repr = Ipdb_core.Bid_repr

let () =
  let pdb = Zoo.car_accidents in
  Format.printf "Car accidents BID-PDB: %d countries, counts Poisson-distributed.@."
    (List.length pdb.Bid.Infinite.blocks);

  (* Theorem 2.6 well-definedness: the total marginal mass is finite. *)
  (match Bid.Infinite.well_defined pdb ~upto:100 with
  | Ok mass ->
    Format.printf "Σ marginals ∈ [%.6f, %.6f] (= #countries: every count block has mass 1)@."
      (Interval.lo mass) (Interval.hi mass)
  | Error e -> failwith e);

  (* Sample a few worlds: every world assigns one count per country. *)
  let rng = Random.State.make [| 2026 |] in
  Format.printf "@.Three sampled worlds:@.";
  for _ = 1 to 3 do
    Format.printf "  %s@." (Instance.to_string (Bid.Infinite.sample pdb rng))
  done;

  (* Truncate counts at 14: the certified tail mass bounds the total
     variation distance to the real PDB. *)
  let truncated, tv = Bid.Infinite.truncate pdb ~n:14 in
  Format.printf "@.Truncated at count <= 14; TV distance <= %.2e@." tv;
  List.iteri
    (fun i block ->
      Format.printf "  block %d: %d alternatives, residual %s@." i (List.length block)
        (Q.to_decimal_string ~digits:6 (Bid.Finite.residual block)))
    (Bid.Finite.blocks truncated);

  (* Lemma 5.7: rebalance marginals, add block identifiers, condition on the
     block structure, project the identifiers away. Verified exactly. *)
  Format.printf "@.Running the Lemma 5.7 construction (small truncation for exact verification)...@.";
  let small, tv_small = Bid.Infinite.truncate pdb ~n:2 in
  let out = Bid_repr.represent small in
  Format.printf "  TI facts: %d, condition: %s@."
    (List.length (Ipdb_pdb.Ti.Finite.facts out.Bid_repr.ti))
    (Ipdb_logic.Fo.to_string out.Bid_repr.condition);
  Format.printf "  exact distribution equality on the truncation: %b (TV to the real PDB <= %.2e)@."
    (Bid_repr.verify small out) tv_small;

  (* Query on the truncation: P(Germany has more than 3 accidents). *)
  let more_than_3 =
    Finite_pdb.prob_event
      (Bid.Finite.to_finite_pdb truncated)
      (fun inst ->
        Instance.exists
          (fun f ->
            match Ipdb_relational.Fact.args f with
            | [ Ipdb_relational.Value.Str "DE"; Ipdb_relational.Value.Int n ] -> n > 3
            | _ -> false)
          inst)
  in
  Format.printf "@.P(DE count > 3) ≈ %s (Poisson λ=2.3)@." (Q.to_decimal_string ~digits:6 more_than_3)
