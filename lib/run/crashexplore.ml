(* Exhaustive crash-point exploration over the simulated I/O environment.
   See crashexplore.mli for the model and the three invariants. *)

module Env = Ipdb_env.Env
module Simenv = Ipdb_env.Simenv

type scenario = {
  name : string;
  setup : unit -> unit;
  work : ack:(string -> unit) -> unit;
  recovered : unit -> (string list, string) result;
  fingerprint : unit -> string;
}

type failure = {
  scenario : string;
  sweep : string;
  op : int;
  torn : int;
  invariant : int;
  detail : string;
}

type report = {
  scenario : string;
  io_ops : int;
  crash_points : int;
  byte_points : int;
  errno_points : int;
  lie_points : int;
  trials : int;
  acked_lost_under_lies : int;
  failures : failure list;
  recovery_total_s : float;
  recovery_max_s : float;
}

type budget = {
  stride : int;
  byte_writes : int;
  byte_tears : int;
  errno_stride : int;
  errnos : Unix.error list;
}

let default_budget =
  { stride = 1; byte_writes = 6; byte_tears = 3; errno_stride = 4; errnos = [ Unix.ENOSPC ] }

let full_budget =
  { stride = 1; byte_writes = max_int; byte_tears = 8; errno_stride = 1;
    errnos = [ Unix.ENOSPC; Unix.EIO ] }

let with_sim sim f = Env.with_env (Simenv.env sim) f

(* The uninterrupted run: records the op trace the sweeps enumerate, the
   acknowledged records, and the canonical end-state fingerprint every
   resumed trial must reproduce byte-for-byte. *)
let baseline (s : scenario) =
  let sim = Simenv.create () in
  with_sim sim (fun () ->
      s.setup ();
      Simenv.reset_ops sim;
      let acked = ref 0 in
      s.work ~ack:(fun _ -> incr acked);
      (* capture the op trace before fingerprinting: fingerprint reads are
         not part of the interrupted run, so they are not fault points *)
      let io_ops = Simenv.ops sim in
      let op_log = Simenv.op_log sim in
      let fp = s.fingerprint () in
      (io_ops, op_log, !acked, fp))

type trial_outcome = {
  t_failures : failure list;
  t_acked_lost : int;
  t_recovery_s : float;
}

(* One interrupted run: fresh world, same deterministic work, with the
   given fault plan armed. After the fault fires we reboot (a power cut
   loses the page cache; a process-killing errno at worst does the same)
   and check the three invariants. *)
let trial (s : scenario) ~sweep ~op ~torn ~plan ~baseline_fp ~lies_expected =
  let sim = Simenv.create () in
  let fail invariant detail =
    { scenario = s.name; sweep; op; torn; invariant; detail }
  in
  with_sim sim (fun () -> s.setup ());
  Simenv.reset_ops sim;
  Simenv.set_plan sim plan;
  let acked = ref [] in
  let failures = ref [] in
  (try with_sim sim (fun () -> s.work ~ack:(fun r -> acked := r :: !acked)) with
  | Simenv.Power_cut -> ()
  | Unix.Unix_error _ | Failure _ -> ()
  (* a planned fault landing inside a Fun.protect cleanup (closing the fd
     of a file being written) arrives wrapped — still a legal crash *)
  | Fun.Finally_raised (Simenv.Power_cut | Unix.Unix_error _ | Failure _) -> ()
  | e ->
      failures :=
        fail 1 (Printf.sprintf "work escaped with %s" (Printexc.to_string e)) :: !failures);
  Simenv.reboot sim;
  (* Invariant 1: recovery is total — it may report damage, never raise
     or return an error on a crash-consistent image. *)
  let t0 = Unix.gettimeofday () in
  let recovered =
    match with_sim sim (fun () -> s.recovered ()) with
    | Ok rs -> Some rs
    | Error m ->
        failures := fail 1 (Printf.sprintf "recovery returned error: %s" m) :: !failures;
        None
    | exception e ->
        failures := fail 1 (Printf.sprintf "recovery raised %s" (Printexc.to_string e)) :: !failures;
        None
  in
  let recovery_s = Unix.gettimeofday () -. t0 in
  (* Invariant 2: acknowledged records survive the cut — except under an
     fsync lie, where losing them is the *point*; those trials count the
     losses instead of failing. *)
  let acked_lost =
    match recovered with
    | None -> 0
    | Some rs ->
        let lost = List.filter (fun a -> not (List.mem a rs)) (List.rev !acked) in
        if lost <> [] && not lies_expected then
          failures :=
            fail 2
              (Printf.sprintf "%d acknowledged record(s) lost, first %S" (List.length lost)
                 (List.hd lost))
            :: !failures;
        List.length lost
  in
  (* Invariant 3: resuming from the crash-consistent image converges on
     the byte-identical end state of the uninterrupted run. *)
  (try
     let fp = with_sim sim (fun () -> s.work ~ack:(fun _ -> ()); s.fingerprint ()) in
     if fp <> baseline_fp then
       failures :=
         fail 3
           (Printf.sprintf "resumed fingerprint differs (%d vs %d bytes)" (String.length fp)
              (String.length baseline_fp))
         :: !failures
   with e ->
     failures := fail 3 (Printf.sprintf "resume raised %s" (Printexc.to_string e)) :: !failures);
  { t_failures = List.rev !failures; t_acked_lost = acked_lost; t_recovery_s = recovery_s }

(* Evenly-spaced sample of at most [n] elements (keeps both extremes). *)
let sample n xs =
  let len = List.length xs in
  if n <= 0 then []
  else if len <= n then xs
  else
    let arr = Array.of_list xs in
    List.init n (fun i -> arr.(i * (len - 1) / max 1 (n - 1)))

let run ?(budget = default_budget) (s : scenario) =
  let io_ops, op_log, base_acked, base_fp = baseline s in
  if base_acked = 0 then
    invalid_arg (Printf.sprintf "crashexplore: scenario %s acknowledges nothing" s.name);
  let failures = ref [] in
  let trials = ref 0 in
  let acked_lost = ref 0 in
  let rec_total = ref 0.0 in
  let rec_max = ref 0.0 in
  let run_trial ~sweep ~op ~torn ~plan ~lies_expected =
    let o = trial s ~sweep ~op ~torn ~plan ~baseline_fp:base_fp ~lies_expected in
    incr trials;
    failures := !failures @ o.t_failures;
    acked_lost := !acked_lost + o.t_acked_lost;
    rec_total := !rec_total +. o.t_recovery_s;
    if o.t_recovery_s > !rec_max then rec_max := o.t_recovery_s
  in
  (* Sweep 1: a power cut at every op boundary (nothing of the op's write,
     if any, reaches the platter). *)
  let stride = max 1 budget.stride in
  let crash_points = ref 0 in
  for k = 0 to io_ops - 1 do
    if k mod stride = 0 then begin
      incr crash_points;
      run_trial ~sweep:"op" ~op:k ~torn:0
        ~plan:{ Simenv.faults = [ Simenv.Crash { at = k; torn = 0 } ]; agitate = None }
        ~lies_expected:false
    end
  done;
  (* Sweep 2: torn writes — the cut lands mid-write, a prefix of the
     pending bytes is already on the platter. *)
  let writes =
    List.filter (fun o -> o.Simenv.kind = Simenv.Write && o.Simenv.len > 1) op_log
  in
  let byte_points = ref 0 in
  List.iter
    (fun (o : Simenv.op) ->
      let tears =
        sample budget.byte_tears (List.init (o.Simenv.len - 1) (fun i -> i + 1))
      in
      List.iter
        (fun torn ->
          incr byte_points;
          run_trial ~sweep:"byte" ~op:o.Simenv.index ~torn
            ~plan:
              { Simenv.faults = [ Simenv.Crash { at = o.Simenv.index; torn } ];
                agitate = None }
            ~lies_expected:false)
        tears)
    (sample budget.byte_writes writes);
  (* Sweep 3: injected errnos (ENOSPC, EIO) — the op fails, the process
     degrades or dies, the machine restarts. *)
  let errno_stride = max 1 budget.errno_stride in
  let errno_points = ref 0 in
  for k = 0 to io_ops - 1 do
    if k mod errno_stride = 0 then
      List.iter
        (fun errno ->
          incr errno_points;
          run_trial ~sweep:"errno" ~op:k ~torn:0
            ~plan:{ Simenv.faults = [ Simenv.Err { at = k; errno } ]; agitate = None }
            ~lies_expected:false)
        budget.errnos
  done;
  (* Sweep 4: fsync lies — the fsync at op [f] reports success but
     persists nothing, and the power fails at the next op. Acked records
     may legitimately vanish (counted, not failed); recovery totality and
     resume convergence must still hold. *)
  let fsyncs = List.filter (fun o -> o.Simenv.kind = Simenv.Fsync) op_log in
  let lie_points = ref 0 in
  List.iter
    (fun (o : Simenv.op) ->
      let f = o.Simenv.index in
      if f mod stride = 0 && f + 1 < io_ops then begin
        incr lie_points;
        run_trial ~sweep:"lie" ~op:f ~torn:0
          ~plan:
            { Simenv.faults =
                [ Simenv.Fsync_lie { at = f }; Simenv.Crash { at = f + 1; torn = 0 } ];
              agitate = None }
          ~lies_expected:true
      end)
    fsyncs;
  {
    scenario = s.name;
    io_ops;
    crash_points = !crash_points;
    byte_points = !byte_points;
    errno_points = !errno_points;
    lie_points = !lie_points;
    trials = !trials;
    acked_lost_under_lies = !acked_lost;
    failures = !failures;
    recovery_total_s = !rec_total;
    recovery_max_s = !rec_max;
  }

let report_to_json (r : report) =
  let module J = Ipdb_obs.Json in
  J.to_string
    (J.Obj
       [
         ("scenario", J.String r.scenario);
         ("io_ops", J.Int r.io_ops);
         ("crash_points", J.Int r.crash_points);
         ("byte_points", J.Int r.byte_points);
         ("errno_points", J.Int r.errno_points);
         ("lie_points", J.Int r.lie_points);
         ("trials", J.Int r.trials);
         ("acked_lost_under_lies", J.Int r.acked_lost_under_lies);
         ("failures", J.Int (List.length r.failures));
         ("recovery_total_s", J.Float r.recovery_total_s);
         ("recovery_max_s", J.Float r.recovery_max_s);
         ( "recovery_mean_s",
           J.Float (if r.trials = 0 then 0.0 else r.recovery_total_s /. float_of_int r.trials) );
       ])

let failure_to_string (f : failure) =
  Printf.sprintf "%s/%s op=%d torn=%d invariant=%d: %s" f.scenario f.sweep f.op f.torn
    f.invariant f.detail

(* ------------------------------------------------------------------ *)
(* Built-in scenarios: the journaled bench run and the checkpointed run *)
(* ------------------------------------------------------------------ *)

(* A journaled bench-style run: replay what the journal already holds,
   then append (and ack) the missing records in order. Idempotent by
   construction, which is exactly what resuming after a cut requires. *)
let journal_scenario ?(path = "bench.journal") ?records () =
  let records =
    match records with
    | Some rs -> rs
    | None ->
        [
          "done example-3.5 ok\n  E(|D|) = 3";
          "ckpt sum-p2.5\n1 42 1/10 3/10";
          "done geometric partial\tafter 64 terms";
          String.make 97 'x';
          "bin\x01ary \\ record";
        ]
  in
  {
    name = "journal";
    setup = (fun () -> ());
    work =
      (fun ~ack ->
        let recovered =
          match Journal.repair ~path with
          | Ok { Journal.records; _ } -> records
          | Error e -> failwith (Error.to_string e)
        in
        match Journal.open_append ~path () with
        | Error e -> failwith (Error.to_string e)
        | Ok j ->
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                List.iteri
                  (fun i r ->
                    if i >= List.length recovered then
                      match Journal.append j r with
                      | Ok () -> ack r
                      | Error e -> failwith (Error.to_string e))
                  records));
    recovered =
      (fun () ->
        match Journal.recover ~path with
        | Ok { Journal.records; _ } -> Ok records
        | Error e -> Error (Error.to_string e));
    fingerprint =
      (fun () ->
        match Ioutil.read_file path with Ok s -> s | Error m -> failwith m);
  }

(* A checkpointed run: journal one record per step, atomically replace the
   checkpoint snapshot every [every] steps. The resumed run must land on
   the same journal bytes *and* the same snapshot bytes. *)
let checkpoint_scenario ?(journal_path = "run.journal") ?(ckpt_path = "run.ckpt")
    ?(steps = 6) ?(every = 2) () =
  let step_record i = Printf.sprintf "step %d of %d" i steps in
  let ckpt_payload i = Printf.sprintf "state after step %d\nsum=%d" i (i * (i + 1) / 2) in
  {
    name = "checkpoint";
    setup = (fun () -> ());
    work =
      (fun ~ack ->
        let done_steps =
          match Journal.repair ~path:journal_path with
          | Ok { Journal.records; _ } -> List.length records
          | Error e -> failwith (Error.to_string e)
        in
        match Journal.open_append ~path:journal_path () with
        | Error e -> failwith (Error.to_string e)
        | Ok j ->
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                for i = done_steps + 1 to steps do
                  (match Journal.append j (step_record i) with
                  | Ok () -> ack (step_record i)
                  | Error e -> failwith (Error.to_string e));
                  if i mod every = 0 then
                    match Checkpoint.save ~path:ckpt_path (ckpt_payload i) with
                    | Ok () -> ack ("ckpt " ^ string_of_int i)
                    | Error e -> failwith (Error.to_string e)
                done;
                (* A cut can land between the last journal append and its
                   checkpoint: the journal says "done", the snapshot lags.
                   Converge by re-saving whenever the snapshot on disk is
                   not the one the completed run would leave behind. *)
                let last_save = steps / every * every in
                if last_save >= 1 then
                  let current =
                    match Checkpoint.load ~path:ckpt_path with
                    | Ok (Some p) -> Some p
                    | Ok None -> None
                    | Error e -> failwith (Error.to_string e)
                  in
                  if current <> Some (ckpt_payload last_save) then
                    match Checkpoint.save ~path:ckpt_path (ckpt_payload last_save) with
                    | Ok () -> ack ("ckpt " ^ string_of_int last_save)
                    | Error e -> failwith (Error.to_string e)));
    recovered =
      (fun () ->
        let ( let* ) = Result.bind in
        let* journal =
          match Journal.recover ~path:journal_path with
          | Ok { Journal.records; _ } -> Ok records
          | Error e -> Error (Error.to_string e)
        in
        let* ckpt =
          match Checkpoint.load ~path:ckpt_path with
          | Ok None -> Ok []
          | Ok (Some payload) -> (
              (* the snapshot names the step it captured; recompute which
                 acks it re-certifies *)
              match String.index_opt payload '\n' with
              | None -> Ok []
              | Some _ ->
                  Ok
                    (List.filter_map
                       (fun i ->
                         if payload = ckpt_payload i then
                           Some ("ckpt " ^ string_of_int i)
                         else None)
                       (List.init steps (fun i -> i + 1))))
          | Error e -> Error (Error.to_string e)
        in
        (* an acked "ckpt i" stays honoured if any *later* snapshot
           superseded it; recovery reports every step the journal and the
           latest snapshot jointly certify *)
        let latest =
          List.fold_left
            (fun acc r ->
              match int_of_string_opt (String.sub r 5 (String.length r - 5)) with
              | Some i -> max acc i
              | None -> acc)
            0 ckpt
        in
        let superseded =
          List.filter_map
            (fun i -> if i mod every = 0 && i <= latest then Some ("ckpt " ^ string_of_int i) else None)
            (List.init steps (fun i -> i + 1))
        in
        Ok (journal @ ckpt @ superseded));
    fingerprint =
      (fun () ->
        let j = match Ioutil.read_file journal_path with Ok s -> s | Error m -> failwith m in
        let c =
          match Ioutil.read_file ckpt_path with Ok s -> s | Error m -> failwith m
        in
        j ^ "\x00" ^ c);
  }
