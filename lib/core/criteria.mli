(** Representability criteria for countable PDBs (Sections 3 and 5.1).

    - {b Necessary} (Proposition 3.4): every PDB in [FO(TI)] has all size
      moments finite. A certified-divergent moment series refutes
      membership.
    - {b Sufficient} (Theorem 5.3): if
      [Σ_{D≠∅} |D| · P(D)^(c/|D|) < ∞] for some positive integer [c], the
      PDB is in [FO(TI)].
    - {b Finer necessary} (Lemma 3.6 / Lemma 3.7): for domain-disjoint PDBs,
      representability forces the world probabilities below an explicit
      edge-cover bound along every divergent series — the tool behind
      Example 3.9 / Theorem 3.10.

    Verdicts carry certificates; nothing is concluded from bare partial
    sums. *)

module Series = Ipdb_series.Series
module Interval = Ipdb_series.Interval

type certificate =
  | Tail of Series.Tail.t  (** the series converges *)
  | Divergence of Series.Divergence.t  (** the series diverges *)

type series_verdict =
  | Finite_sum of Interval.t
  | Infinite_sum of { partial : float; at : int }
  | Partial of {
      enclosure : Interval.t option;
          (** for convergence checks: a sound enclosure of the infinite sum
              under the certificate hypothesis, validated only up to [at] *)
      partial : float;  (** partial sum over the evaluated prefix *)
      at : int;  (** last index evaluated *)
      requested : int;  (** the [upto] originally asked for *)
      exhausted : Ipdb_run.Error.exhaustion;
    }
      (** The budget ran out before [upto]: a certified partial verdict,
          never a crash or a silent wrong answer. *)
  | Invalid_certificate of string
  | Check_failed of Ipdb_run.Error.t
      (** Typed non-certificate failure (injected fault, I/O, internal). *)

val check_series :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  start:int ->
  cert:certificate ->
  upto:int ->
  (int -> float) ->
  series_verdict
(** Validate the certificate on the computed prefix and produce the
    verdict, consuming one budget step per term. Never raises: faults in
    term evaluation or certificate validation surface as
    {!Invalid_certificate} / {!Check_failed}. With [?pool] the chunked
    parallel series engines run instead — completed verdicts are
    bit-identical to the sequential ones for any worker count (see
    {!Ipdb_series.Series.sum_resumable}). *)

val moment_verdict :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  Ipdb_pdb.Family.t -> k:int -> cert:certificate -> upto:int -> series_verdict
(** Verdict for the [k]-th size moment [Σ |D_n|^k P(D_n)]. *)

val theorem53_verdict :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  Ipdb_pdb.Family.t -> c:int -> cert:certificate -> upto:int -> series_verdict
(** Verdict for the Theorem 5.3 series with capacity [c]. *)

val verdict_to_string : series_verdict -> string
(** One-line rendering of a series verdict. *)

(** {1 Resumable checks and persisted evidence}

    The [_resumable] variants thread {!Ipdb_series.Series.Snapshot}s
    through the budgeted engines: [from] restarts a check from the exact
    state a previous (budget-exhausted) run stopped at, and [progress]
    observes the state every [progress_every] terms so callers can
    checkpoint mid-flight. Because the engines are sequential folds over
    exactly-persisted state, an interrupted-and-resumed check returns the
    same verdict, bit for bit, as an uninterrupted one. *)

val check_series_resumable :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  ?from:Series.Snapshot.t ->
  ?progress:(Series.Snapshot.t -> unit) ->
  ?progress_every:int ->
  start:int ->
  cert:certificate ->
  upto:int ->
  (int -> float) ->
  series_verdict * Series.Snapshot.t option
(** {!check_series} with checkpoint/resume. The snapshot is [Some] exactly
    when the engine ran (verdicts [Finite_sum], [Infinite_sum] and
    [Partial]); for a [Partial] verdict it is the state to resume from. A
    snapshot of a different computation yields
    [Check_failed (Validation _)]. *)

val moment_verdict_resumable :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  ?from:Series.Snapshot.t ->
  ?progress:(Series.Snapshot.t -> unit) ->
  ?progress_every:int ->
  Ipdb_pdb.Family.t ->
  k:int ->
  cert:certificate ->
  upto:int ->
  series_verdict * Series.Snapshot.t option

val theorem53_verdict_resumable :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  ?from:Series.Snapshot.t ->
  ?progress:(Series.Snapshot.t -> unit) ->
  ?progress_every:int ->
  Ipdb_pdb.Family.t ->
  c:int ->
  cert:certificate ->
  upto:int ->
  series_verdict * Series.Snapshot.t option

val verdict_serialize : series_verdict -> string
(** Single-line encoding of a verdict with all floats persisted as exact
    rationals (via {!Series.Snapshot.encode_float}), so deserializing
    reproduces the verdict bit for bit — including the typed error inside
    [Check_failed]. *)

val verdict_deserialize : string -> (series_verdict, string) result
(** Total inverse of {!verdict_serialize}; malformed input yields a
    diagnostic, never an exception. *)

(** {1 Lemma 3.3: views preserve finite moments} *)

val lemma33_bound :
  view:Ipdb_logic.View.t ->
  input_schema:Ipdb_relational.Schema.t ->
  input_moment:(int -> Ipdb_bignum.Q.t) ->
  k:int ->
  Ipdb_bignum.Q.t
(** The explicit bound from the proof of Lemma 3.3:
    [E_V(D)(|·|^k) <= m^k Σ_{j=0}^{rk} C(rk,j) r'^j c^(rk-j) E_D(|·|^j)]
    where [m] is the number of output relations, [r] their maximal arity,
    [c] the maximal number of constants in a defining formula, and [r'] the
    maximal arity of the input schema. Finite whenever the input moments up
    to order [rk] are — the inductive heart of Proposition 3.4.
    (Property-tested: the pushforward's exact [k]-th moment never exceeds
    this bound on finite PDBs.) *)

val binomial : int -> int -> Ipdb_bignum.Q.t
(** Exact binomial coefficient [C(n, k)] ([0] outside range). *)

(** {1 Lemma 3.6: the edge-cover bound} *)

type lemma36_data = {
  vn_size : int;  (** [|V_n|]: active-domain elements not constants of the view *)
  r : int;  (** maximal arity of the TI-PDB's schema *)
  en_mass : Ipdb_bignum.Q.t;  (** [Σ_{e ∈ E_n} q_e] *)
  bound : float;  (** [|V_n| (r² |V_n|^(r-1) Σq)^(|V_n|/r)] *)
  exact_lhs : Ipdb_bignum.Q.t option;
      (** [Pr(Φ(I) = D_n)] by exhaustive enumeration, when feasible *)
}

val lemma36_bound :
  ti:Ipdb_pdb.Ti.Finite.t ->
  view:Ipdb_logic.View.t ->
  world:Ipdb_relational.Instance.t ->
  lemma36_data
(** Computes both sides of Lemma 3.6 for a concrete finite TI-PDB, view and
    output instance. [exact_lhs] is [None] past the enumeration gate. *)

val minimal_cover_sum :
  ti:Ipdb_pdb.Ti.Finite.t -> target:Ipdb_relational.Value.t list -> Ipdb_bignum.Q.t
(** [Σ_{C ∈ EC*_H(V)} Π_{e∈C} q_e] — the intermediate quantity of the
    Lemma 3.6 proof, computed exactly over minimal edge covers. *)

(** {1 Lemma 3.7: witnesses against representability} *)

val lemma37_rhs : r:int -> a_n:float -> d_n:int -> float
(** The bound [d_n · (a_n · d_n^(r-1))^(d_n/r)] of Lemma 3.7. *)

val lemma37_refutation :
  prob:(int -> float) ->
  adom_size:(int -> int) ->
  a:(int -> float) ->
  rs:int list ->
  range:int * int ->
  (int * int) list
(** For each candidate arity [r] in [rs], counts over [range] how many
    indices [n] satisfy [P(D_n) >= lemma37_rhs] — i.e. {e violate} the
    inequality that Lemma 3.7 forces for infinitely many [n] were the PDB
    representable. Returns [(r, violations)]; a violation count equal to
    the whole range for every [r] (and growing with the range) is the
    Example 3.9 refutation pattern. *)
