#!/usr/bin/env bash
# Whole-workload replay on the unfiltered reference arithmetic
# (DESIGN.md §14): with IPDB_ARITH_REFERENCE=1 every fast path — native-int
# shortcuts, Karatsuba, the float comparison filter, batched GCD, memoised
# powers — is disabled process-wide, and every suite must still pass with
# identical verdicts. Runs the differential oracle plus the kb and serve
# contract suites under the switch.
set -euo pipefail

# Slash-free relative paths (same-directory executables) would otherwise
# hit a PATH lookup from bash.
norm() { case "$1" in */*) printf '%s' "$1" ;; *) printf './%s' "$1" ;; esac; }

diff_exe=$(norm "$1")
kb_exe=$(norm "$2")
serve_script=$(norm "$3")
ipdb_exe=$(norm "$4")

export IPDB_ARITH_REFERENCE=1

# Private alcotest output dirs: the same executables also run (without the
# switch) in the regular test stanza, and concurrent runs must not race on
# the shared _tests/latest symlinks.
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
mkdir -p "$out/diff" "$out/kb"

echo "arith_reference: differential oracle under IPDB_ARITH_REFERENCE=1"
"$diff_exe" -o "$out/diff" >/dev/null

echo "arith_reference: kb contract under IPDB_ARITH_REFERENCE=1"
"$kb_exe" -o "$out/kb" >/dev/null

echo "arith_reference: serve contract under IPDB_ARITH_REFERENCE=1"
bash "$serve_script" "$ipdb_exe"

echo "arith_reference: OK"
