lib/relational/algebra.mli: Instance Value
