(* Tests for the PDB substrate: finite PDBs, TI, BID, families. *)

module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module View = Ipdb_logic.View
module Interval = Ipdb_series.Interval
module Series = Ipdb_series.Series
module Worlds = Ipdb_pdb.Worlds
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Ti = Ipdb_pdb.Ti
module Bid = Ipdb_pdb.Bid
module Family = Ipdb_pdb.Family

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)
let inst facts = Instance.of_list facts
let schema_r = Schema.make [ ("R", 1) ]
let q = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Worlds                                                              *)
(* ------------------------------------------------------------------ *)

let test_worlds () =
  Alcotest.(check int) "subsets of 3" 8 (List.length (Worlds.subsets [ 1; 2; 3 ]));
  Alcotest.(check int) "subsets of 0" 1 (List.length (Worlds.subsets []));
  List.iter
    (fun (inc, exc) -> Alcotest.(check int) "partition" 3 (List.length inc + List.length exc))
    (Worlds.subsets_with_complement [ 1; 2; 3 ]);
  Alcotest.(check int) "cartesian" 6 (List.length (Worlds.cartesian [ [ 1; 2 ]; [ 3 ]; [ 4; 5; 6 ] ]))

(* ------------------------------------------------------------------ *)
(* Finite_pdb                                                          *)
(* ------------------------------------------------------------------ *)

let d_simple =
  Finite_pdb.make schema_r
    [ (inst [], Q.of_ints 1 4);
      (inst [ fact "R" [ 1 ] ], Q.of_ints 1 4);
      (inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ], Q.of_ints 1 2)
    ]

let test_finite_pdb_basics () =
  Alcotest.(check int) "worlds" 3 (Finite_pdb.num_worlds d_simple);
  Alcotest.(check q) "prob" (Q.of_ints 1 4) (Finite_pdb.prob d_simple (inst [ fact "R" [ 1 ] ]));
  Alcotest.(check q) "prob missing" Q.zero (Finite_pdb.prob d_simple (inst [ fact "R" [ 9 ] ]));
  Alcotest.(check q) "marginal R(1)" (Q.of_ints 3 4) (Finite_pdb.marginal d_simple (fact "R" [ 1 ]));
  Alcotest.(check q) "marginal R(2)" Q.half (Finite_pdb.marginal d_simple (fact "R" [ 2 ]));
  Alcotest.(check q) "E|.|" (Q.of_ints 5 4) (Finite_pdb.expected_size d_simple);
  Alcotest.(check q) "E|.|^2" (Q.of_ints 9 4) (Finite_pdb.moment d_simple 2);
  Alcotest.(check int) "facts" 2 (List.length (Finite_pdb.facts d_simple))

let test_finite_pdb_validation () =
  Alcotest.check_raises "sum != 1" (Invalid_argument "Finite_pdb: probabilities sum to 1/2, not 1")
    (fun () -> ignore (Finite_pdb.make schema_r [ (inst [], Q.half) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Finite_pdb: negative probability") (fun () ->
      ignore (Finite_pdb.make schema_r [ (inst [], Q.of_int 2); (inst [ fact "R" [ 1 ] ], Q.minus_one) ]));
  (* duplicates are merged *)
  let d = Finite_pdb.make schema_r [ (inst [], Q.half); (inst [], Q.half) ] in
  Alcotest.(check int) "merged" 1 (Finite_pdb.num_worlds d);
  (* normalisation *)
  let d = Finite_pdb.make_unnormalized schema_r [ (inst [], Q.of_int 3); (inst [ fact "R" [ 1 ] ], Q.of_int 1) ] in
  Alcotest.(check q) "normalised" (Q.of_ints 3 4) (Finite_pdb.prob d (inst []))

let test_condition () =
  (* condition on "R(1) holds" *)
  let phi = Fo.atom "R" [ Fo.ci 1 ] in
  match Finite_pdb.condition d_simple phi with
  | None -> Alcotest.fail "conditioning failed"
  | Some c ->
    Alcotest.(check int) "two worlds" 2 (Finite_pdb.num_worlds c);
    Alcotest.(check q) "rescaled" (Q.of_ints 1 3) (Finite_pdb.prob c (inst [ fact "R" [ 1 ] ]));
    Alcotest.(check q) "rescaled 2" (Q.of_ints 2 3) (Finite_pdb.prob c (inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ]));
    (* conditioning on an impossible event *)
    Alcotest.(check bool) "impossible" true (Finite_pdb.condition d_simple (Fo.atom "R" [ Fo.ci 77 ]) = None)

let test_map_view () =
  (* copy view: S(x) := R(x) *)
  let v = View.make [ ("S", [ "x" ], Fo.atom "R" [ Fo.v "x" ]) ] in
  let image = Finite_pdb.map_view v d_simple in
  Alcotest.(check int) "same world count" 3 (Finite_pdb.num_worlds image);
  Alcotest.(check q) "pushforward prob" Q.half
    (Finite_pdb.prob image (inst [ Fact.make "S" [ vi 1 ]; Fact.make "S" [ vi 2 ] ]));
  (* collapsing view: T() := ∃x R(x) merges the two nonempty worlds *)
  let v2 = View.make [ ("T", [], Fo.Exists ("x", Fo.atom "R" [ Fo.v "x" ])) ] in
  let image2 = Finite_pdb.map_view v2 d_simple in
  Alcotest.(check int) "merged worlds" 2 (Finite_pdb.num_worlds image2);
  Alcotest.(check q) "mass merged" (Q.of_ints 3 4) (Finite_pdb.prob image2 (inst [ Fact.make "T" [] ]))

let test_tv_distance () =
  let d1 = Finite_pdb.make schema_r [ (inst [], Q.half); (inst [ fact "R" [ 1 ] ], Q.half) ] in
  let d2 = Finite_pdb.make schema_r [ (inst [], Q.of_ints 1 4); (inst [ fact "R" [ 1 ] ], Q.of_ints 3 4) ] in
  Alcotest.(check q) "tv" (Q.of_ints 1 4) (Finite_pdb.tv_distance d1 d2);
  Alcotest.(check q) "tv self" Q.zero (Finite_pdb.tv_distance d1 d1)

let test_maximal_worlds () =
  Alcotest.(check int) "unique maximal" 1 (List.length (Finite_pdb.maximal_worlds d_simple))

(* ------------------------------------------------------------------ *)
(* TI                                                                  *)
(* ------------------------------------------------------------------ *)

let ti_small =
  Ti.Finite.make schema_r [ (fact "R" [ 1 ], Q.of_ints 1 3); (fact "R" [ 2 ], Q.of_ints 1 2) ]

let test_ti_expansion () =
  let d = Ti.Finite.to_finite_pdb ti_small in
  Alcotest.(check int) "4 worlds" 4 (Finite_pdb.num_worlds d);
  Alcotest.(check q) "P(empty)" (Q.of_ints 1 3) (Finite_pdb.prob d (inst []));
  Alcotest.(check q) "P(both)" (Q.of_ints 1 6) (Finite_pdb.prob d (inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ]));
  (* the expansion is tuple-independent by Definition 2.3 *)
  Alcotest.(check bool) "is TI" true (Finite_pdb.is_tuple_independent d);
  (* and the expansion's marginals agree *)
  Alcotest.(check q) "marginal agree" (Q.of_ints 1 3) (Finite_pdb.marginal d (fact "R" [ 1 ]))

let test_ti_world_prob () =
  let d = Ti.Finite.to_finite_pdb ti_small in
  List.iter
    (fun (w, p) -> Alcotest.(check q) ("world " ^ Instance.to_string w) p (Ti.Finite.world_prob ti_small w))
    (Finite_pdb.support d);
  Alcotest.(check q) "foreign world" Q.zero (Ti.Finite.world_prob ti_small (inst [ fact "R" [ 9 ] ]))

let test_ti_certain () =
  let ti = Ti.Finite.make schema_r [ (fact "R" [ 1 ], Q.one); (fact "R" [ 2 ], Q.half) ] in
  Alcotest.(check int) "certain" 1 (List.length (Ti.Finite.certain_facts ti));
  Alcotest.(check int) "uncertain" 1 (List.length (Ti.Finite.uncertain_facts ti));
  let d = Ti.Finite.to_finite_pdb ti in
  Alcotest.(check int) "2 worlds" 2 (Finite_pdb.num_worlds d);
  Alcotest.(check bool) "idb membership yes" true (Ti.Finite.induced_idb_member ti (inst [ fact "R" [ 1 ] ]));
  Alcotest.(check bool) "idb membership no (missing certain)" false
    (Ti.Finite.induced_idb_member ti (inst [ fact "R" [ 2 ] ]));
  Alcotest.(check bool) "idb membership no (foreign fact)" false
    (Ti.Finite.induced_idb_member ti (inst [ fact "R" [ 1 ]; fact "R" [ 9 ] ]))

let test_ti_not_ti_counterexample () =
  (* the BID of Example B.2 is not tuple-independent *)
  let d =
    Finite_pdb.make schema_r
      [ (inst [ fact "R" [ 1 ] ], Q.half); (inst [ fact "R" [ 2 ] ], Q.half) ]
  in
  Alcotest.(check bool) "mutually exclusive pair is not TI" false (Finite_pdb.is_tuple_independent d)

let test_ti_infinite () =
  let ti =
    Ti.Infinite.make ~name:"geo" ~schema:schema_r
      ~fact:(fun i -> fact "R" [ i ])
      ~marginal:(fun i -> Float.ldexp 1.0 (-i))
      ~start:1
      ~tail:(Series.Tail.Geometric { index = 1; first = 0.5; ratio = 0.5 })
      ()
  in
  (match Ti.Infinite.well_defined ti ~upto:50 with
  | Ok s -> Alcotest.(check bool) "sum of marginals = 1" true (Interval.contains s 1.0)
  | Error e -> Alcotest.fail e);
  (match Ti.Infinite.moment_upper_bound ti ~k:3 ~upto:60 with
  | Ok b -> Alcotest.(check bool) "3rd moment bound finite" true (Float.is_finite b && b > 0.0)
  | Error e -> Alcotest.fail e);
  let fin, tv = Ti.Infinite.truncate ti ~n:10 in
  Alcotest.(check int) "10 facts" 10 (List.length (Ti.Finite.facts fin));
  Alcotest.(check bool) "tv bound" true (tv <= Float.ldexp 1.0 (-10) *. 1.001)

(* ------------------------------------------------------------------ *)
(* BID                                                                 *)
(* ------------------------------------------------------------------ *)

let bid_two_blocks =
  Bid.Finite.make schema_r
    [ [ (fact "R" [ 1 ], Q.of_ints 1 3); (fact "R" [ 2 ], Q.of_ints 1 3) ];
      [ (fact "R" [ 3 ], Q.half) ]
    ]

let test_bid_expansion () =
  let d = Bid.Finite.to_finite_pdb bid_two_blocks in
  (* 3 choices in block 1 (incl. none) x 2 in block 2 *)
  Alcotest.(check int) "6 worlds" 6 (Finite_pdb.num_worlds d);
  Alcotest.(check q) "P(empty)" (Q.of_ints 1 6) (Finite_pdb.prob d (inst []));
  Alcotest.(check q) "P(R1,R3)" (Q.of_ints 1 6) (Finite_pdb.prob d (inst [ fact "R" [ 1 ]; fact "R" [ 3 ] ]));
  (* intra-block disjointness *)
  Alcotest.(check q) "P(R1,R2) = 0" Q.zero
    (Finite_pdb.prob_event d (fun i -> Instance.mem (fact "R" [ 1 ]) i && Instance.mem (fact "R" [ 2 ]) i));
  (* Definition 2.5 holds for the true partition *)
  Alcotest.(check bool) "is BID" true
    (Finite_pdb.is_bid d ~blocks:[ [ fact "R" [ 1 ]; fact "R" [ 2 ] ]; [ fact "R" [ 3 ] ] ]);
  (* ... and fails for a wrong partition *)
  Alcotest.(check bool) "wrong partition" false
    (Finite_pdb.is_bid d ~blocks:[ [ fact "R" [ 1 ] ]; [ fact "R" [ 2 ]; fact "R" [ 3 ] ] ]);
  Alcotest.(check q) "expected size" (Q.sum [ Q.of_ints 2 3; Q.half ]) (Finite_pdb.expected_size d)

let test_bid_validation () =
  Alcotest.check_raises "block mass > 1" (Invalid_argument "Bid.Finite.make: block marginals sum to more than 1")
    (fun () -> ignore (Bid.Finite.make schema_r [ [ (fact "R" [ 1 ], Q.of_ints 2 3); (fact "R" [ 2 ], Q.of_ints 2 3) ] ]))

let test_bid_of_ti () =
  let b = Bid.Finite.of_ti ti_small in
  Alcotest.(check int) "singleton blocks" 2 (List.length (Bid.Finite.blocks b));
  Alcotest.(check bool) "same distribution" true
    (Finite_pdb.equal (Bid.Finite.to_finite_pdb b) (Ti.Finite.to_finite_pdb ti_small))

let test_bid_exclusive_pair () =
  match Bid.Finite.mutually_exclusive_pair bid_two_blocks with
  | Some _ -> ()
  | None -> Alcotest.fail "expected an exclusive pair"

let test_bid_sample_frequencies () =
  let rng = Random.State.make [| 3 |] in
  let n = 30000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Instance.mem (fact "R" [ 1 ]) (Bid.Finite.sample bid_two_blocks rng) then incr count
  done;
  let freq = float_of_int !count /. float_of_int n in
  Alcotest.(check bool) "marginal ~ 1/3" true (Float.abs (freq -. (1.0 /. 3.0)) < 0.02)

(* ------------------------------------------------------------------ *)
(* Family                                                              *)
(* ------------------------------------------------------------------ *)

let geometric_family =
  Family.make ~name:"geo-family" ~schema:schema_r
    ~instance:(fun n -> inst (List.init n (fun j -> fact "R" [ (1000 * n) + j ])))
    ~prob:(fun n -> Float.ldexp 1.0 (-n))
    ~prob_q:(fun n -> Q.pow Q.half n)
    ~start:1
    ~prob_tail:(Series.Tail.Geometric { index = 1; first = 0.5; ratio = 0.5 })
    ()

let test_family_basics () =
  Alcotest.(check int) "size" 3 (Family.size geometric_family 3);
  (match Family.total_probability geometric_family ~upto:50 with
  | Ok s -> Alcotest.(check bool) "total 1" true (Interval.contains s 1.0)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "domain disjoint" true (Family.domain_disjoint_on geometric_family ~upto:20);
  Alcotest.(check bool) "not bounded by 3" false (Family.bounded_size_on geometric_family ~upto:10 ~bound:3);
  Alcotest.(check (float 1e-12)) "moment term" (4.0 *. 0.25) (Family.moment_term geometric_family ~k:2 2);
  (* theorem53 term: |D| * p^{c/|D|} = 2 * (1/4)^{1/2} = 1 at n=2, c=1 *)
  Alcotest.(check (float 1e-9)) "thm53 term" 1.0 (Family.theorem53_term geometric_family ~c:1 2)

let test_family_truncate () =
  let d = Family.truncate_exact geometric_family ~n:3 in
  (* weights 1/2, 1/4, 1/8 renormalised over 7/8 *)
  Alcotest.(check q) "renormalised" (Q.of_ints 4 7) (Finite_pdb.prob d (Family.(geometric_family.instance) 1));
  Alcotest.(check int) "3 worlds" 3 (Finite_pdb.num_worlds d);
  let df = Family.truncate_float geometric_family ~n:3 in
  Alcotest.(check bool) "float truncation agrees" true (Q.lt (Finite_pdb.tv_distance d df) (Q.of_ints 1 1000000))

let () =
  Alcotest.run "pdb"
    [ ("worlds", [ Alcotest.test_case "enumeration" `Quick test_worlds ]);
      ( "finite-pdb",
        [ Alcotest.test_case "basics" `Quick test_finite_pdb_basics;
          Alcotest.test_case "validation" `Quick test_finite_pdb_validation;
          Alcotest.test_case "conditioning" `Quick test_condition;
          Alcotest.test_case "pushforward" `Quick test_map_view;
          Alcotest.test_case "tv distance" `Quick test_tv_distance;
          Alcotest.test_case "maximal worlds" `Quick test_maximal_worlds
        ] );
      ( "ti",
        [ Alcotest.test_case "expansion" `Quick test_ti_expansion;
          Alcotest.test_case "world probabilities" `Quick test_ti_world_prob;
          Alcotest.test_case "certain facts" `Quick test_ti_certain;
          Alcotest.test_case "non-TI counterexample" `Quick test_ti_not_ti_counterexample;
          Alcotest.test_case "infinite TI (Thm 2.4)" `Quick test_ti_infinite
        ] );
      ( "bid",
        [ Alcotest.test_case "expansion" `Quick test_bid_expansion;
          Alcotest.test_case "validation" `Quick test_bid_validation;
          Alcotest.test_case "TI as BID" `Quick test_bid_of_ti;
          Alcotest.test_case "exclusive pair" `Quick test_bid_exclusive_pair;
          Alcotest.test_case "sampling frequencies" `Quick test_bid_sample_frequencies
        ] );
      ( "family",
        [ Alcotest.test_case "basics" `Quick test_family_basics;
          Alcotest.test_case "truncation" `Quick test_family_truncate
        ] )
    ]
