(** Wire protocol of the [ipdb serve] daemon.

    {b Framing.} Every message — request or response — is one
    length-prefixed line:

    {v ipdbs1 <length> <escaped-payload>\n v}

    where [length] is the byte length of the {e raw} payload (before
    escaping) and the escaping ([Ioutil.escape]) makes arbitrary payload
    bytes line-safe — the same discipline as the journal's record framing,
    so a torn connection damages at most the in-flight frame and is always
    detectable. Frames above {!max_payload} raw bytes are rejected.

    {b Requests} (payload grammar, one per connection):

    {v
  version
  stats
  classify  FAMILY [upto=N] [timeout=S] [max_steps=N]
  moments   FAMILY [k=K] [upto=N] [timeout=S] [max_steps=N]
  criterion FAMILY [c=C] [upto=N] [timeout=S] [max_steps=N]
  pqe       PDB SENTENCE...
  kb        SENTENCE...
    v}

    {b Responses} are [<status> <body>] where the status token mirrors the
    CLI exit-code contract 0–4, plus two server-only rejections:

    - [0] success / certified-positive verdict
    - [1] certified-negative verdict
    - [2] bad request (unknown op, unknown family, parse error)
    - [3] budget exhausted: the body is a sound partial verdict
    - [E_BUSY] load shed: admission control refused the request
    - [E_PROTO] malformed frame; the connection is closed after it
    - [4] internal error (invalid certificate, injected fault, bug) *)

val version : string
(** Protocol format tag, ["ipdbs1"]. *)

val package_version : string
(** The ipdb package version. *)

val max_payload : int
(** Upper bound on raw payload bytes per frame (64 KiB). *)

(** {1 Framing} *)

val frame : string -> string
(** Wrap a raw payload into one framed line (with trailing newline). *)

val parse_frame : string -> (string, string) result
(** Parse one framed line (without its trailing newline) back to the raw
    payload; diagnostics for bad magic, bad length, oversize, or damaged
    escapes. *)

val read_frame : Unix.file_descr -> (string, string) result
(** Read bytes until the first newline (bounded by an escaped
    {!max_payload}) and parse the frame. [Error] on EOF, timeouts
    ([SO_RCVTIMEO] on the fd), oversize input, or a malformed frame. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame and send a payload ({!Ioutil.write_all}; EINTR-safe).
    @raise Unix.Unix_error when the peer is gone — callers at the serve
    boundary must treat that as a torn connection, not a crash. *)

(** {1 Requests} *)

type request =
  | Version
  | Stats
  | Classify of { family : string; upto : int }
  | Moments of { family : string; k : int; upto : int }
  | Criterion of { family : string; c : int; upto : int }
  | Pqe of { ti : string; query : string }
  | Kb of { query : string }
      (** lifted UCQ probability over the daemon's loaded knowledge base *)

type budget_opts = { timeout : float option; max_steps : int option }

val parse_request : string -> (request * budget_opts, string) result
(** Parse a request payload. Unknown ops, malformed parameters and missing
    arguments yield a diagnostic (the server answers it with status [2]). *)

val request_to_payload : request -> budget_opts -> string
(** Render back to the wire grammar (inverse of {!parse_request} up to
    parameter order). *)

val cache_key : ?kb_digest:int64 -> request -> string option
(** Canonical content-address preimage of the (family, query, precision)
    triple, via {!Ipdb_pdb.Serialize.canonical_key}. [None] for requests
    that must not be cached ([version], [stats]). Budget options are
    deliberately excluded: a cached answer is a {e completed} verdict,
    valid whatever budget the asker would have allowed. A [Kb] request is
    keyed on [kb_digest] (the loaded kb file's content digest) plus the
    canonicalised sentence — and gets no key at all when no kb is loaded,
    since the answer would not be a verdict about any fact set. *)

(** {1 Responses} *)

type status = Ok_positive | Certified_negative | Bad_request | Partial | Internal | Busy | Proto

val status_token : status -> string
val status_of_token : string -> status option

val status_exit_code : status -> int
(** The CLI exit code a one-shot client maps the status to: [0]–[4] for
    the mirror statuses, [3] for [E_BUSY] (resource exhaustion), [2] for
    [E_PROTO]. *)

type response = { status : status; body : string }

val render_response : response -> string
val parse_response : string -> (response, string) result

val cacheable : status -> bool
(** Only completed certified verdicts ([0] and [1]) enter the verdict
    cache; partial verdicts depend on the asker's budget and errors are
    not answers. *)
