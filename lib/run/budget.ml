type t = {
  started : float;
  deadline : float option;  (* absolute wall-clock time *)
  timeout : float;          (* the requested relative limit, for reporting *)
  max_steps : int option;
  cancel : (unit -> bool) option;
  limited : bool;
  mutable steps : int;
}

(* Wall-clock and cancellation polls happen every [poll_mask + 1] steps so
   that check stays cheap inside per-term loops. *)
let poll_mask = 15

let unlimited =
  { started = 0.0; deadline = None; timeout = 0.0; max_steps = None; cancel = None; limited = false; steps = 0 }

let make ?timeout ?max_steps ?cancel () =
  (match timeout with
  | Some s when not (s > 0.0) -> invalid_arg "Budget.make: timeout must be positive"
  | _ -> ());
  (match max_steps with
  | Some n when n <= 0 -> invalid_arg "Budget.make: max_steps must be positive"
  | _ -> ());
  let now = Unix.gettimeofday () in
  {
    started = now;
    deadline = Option.map (fun s -> now +. s) timeout;
    timeout = Option.value timeout ~default:0.0;
    max_steps;
    cancel;
    limited = timeout <> None || max_steps <> None || cancel <> None;
    steps = 0;
  }

let is_unlimited t = not t.limited
let steps_used t = t.steps
let elapsed t = if t.limited then Unix.gettimeofday () -. t.started else 0.0

let check t =
  if not t.limited then Ok ()
  else begin
    t.steps <- t.steps + 1;
    match t.max_steps with
    | Some limit when t.steps > limit -> Error (Error.Steps { used = t.steps; limit })
    | _ ->
      if t.steps land poll_mask <> 0 && t.steps <> 1 then Ok ()
      else begin
        match t.cancel with
        | Some f when f () -> Error Error.Cancelled
        | _ -> (
          match t.deadline with
          | Some d ->
            let now = Unix.gettimeofday () in
            if now > d then Error (Error.Timeout { elapsed = now -. t.started; limit = t.timeout }) else Ok ()
          | None -> Ok ())
      end
  end
