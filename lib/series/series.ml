type term = int -> float

let ulp_slack x = Float.ldexp (Float.max (Float.abs x) Float.min_float) (-48)
(* 4-ulps-ish relative slack used when validating pointwise hypotheses. *)

module Tail = struct
  type t =
    | Finite_support of { last : int }
    | Geometric of { index : int; first : float; ratio : float }
    | P_series of { index : int; coeff : float; p : float }
    | Exponential of { index : int; coeff : float; rate : float }

  let start_index = function
    | Finite_support _ -> min_int
    | Geometric { index; _ } | P_series { index; _ } | Exponential { index; _ } -> index

  let bound_from t n =
    if n < start_index t && start_index t > min_int then
      invalid_arg "Series.Tail.bound_from: index precedes certificate";
    match t with
    | Finite_support { last } -> if n > last then 0.0 else invalid_arg "Series.Tail.bound_from: support not exhausted"
    | Geometric { index; first; ratio } ->
      (* sum_{k>=n} first*ratio^(k-index) = first*ratio^(n-index)/(1-ratio) *)
      first *. (ratio ** float_of_int (n - index)) /. (1.0 -. ratio)
    | P_series { coeff; p; _ } ->
      (* integral test: sum_{k>=n} coeff/k^p <= coeff * ( n^-p + (n)^(1-p)/(p-1) ) *)
      let nf = float_of_int n in
      coeff *. ((nf ** -.p) +. ((nf ** (1.0 -. p)) /. (p -. 1.0)))
    | Exponential { coeff; rate; _ } ->
      coeff *. (rate ** float_of_int n) /. (1.0 -. rate)

  let pointwise_bound t n =
    match t with
    | Finite_support { last } -> if n > last then 0.0 else Float.infinity
    | Geometric { index; first; ratio } -> first *. (ratio ** float_of_int (n - index))
    | P_series { coeff; p; _ } -> coeff /. (float_of_int n ** p)
    | Exponential { coeff; rate; _ } -> coeff *. (rate ** float_of_int n)

  let params_ok = function
    | Finite_support _ -> Ok ()
    | Geometric { first; ratio; _ } ->
      if ratio >= 0.0 && ratio < 1.0 && first >= 0.0 then Ok ()
      else Error "Geometric: need 0 <= ratio < 1 and first >= 0"
    | P_series { coeff; p; index } ->
      if p > 1.0 && coeff >= 0.0 && index >= 1 then Ok ()
      else Error "P_series: need p > 1, coeff >= 0, index >= 1"
    | Exponential { coeff; rate; _ } ->
      if rate >= 0.0 && rate < 1.0 && coeff >= 0.0 then Ok ()
      else Error "Exponential: need 0 <= rate < 1 and coeff >= 0"

  let validate t f ~from_index ~upto =
    match params_ok t with
    | Error _ as e -> e
    | Ok () ->
      let lo = Stdlib.max from_index (Stdlib.max (start_index t) from_index) in
      let rec go n =
        if n > upto then Ok ()
        else begin
          let a = f n in
          if a < 0.0 then Error (Printf.sprintf "term %d is negative (%g)" n a)
          else begin
            let b = pointwise_bound t n in
            if a <= b +. ulp_slack b then go (n + 1)
            else Error (Printf.sprintf "term %d = %g exceeds certified bound %g" n a b)
          end
        end
      in
      go lo

  let pp fmt = function
    | Finite_support { last } -> Format.fprintf fmt "finite support (last=%d)" last
    | Geometric { index; first; ratio } -> Format.fprintf fmt "geometric from %d: %g * %g^(n-%d)" index first ratio index
    | P_series { index; coeff; p } -> Format.fprintf fmt "p-series from %d: %g / n^%g" index coeff p
    | Exponential { index; coeff; rate } -> Format.fprintf fmt "exponential from %d: %g * %g^n" index coeff rate
end

module Divergence = struct
  type t =
    | Harmonic of { index : int; coeff : float }
    | Bounded_below of { index : int; bound : float }
    | Eventually_ratio_ge_one of { index : int; floor : float }
    | Subsequence_harmonic of { index : int; pick : int -> int; coeff : float }

  let start_index = function
    | Harmonic { index; _ } | Bounded_below { index; _ } | Eventually_ratio_ge_one { index; _ } -> index
    | Subsequence_harmonic { index; pick; _ } -> pick index

  let validate t f ~upto =
    let i0 = start_index t in
    match t with
    | Harmonic { coeff; _ } ->
      if coeff <= 0.0 then Error "Harmonic: coeff must be positive"
      else begin
        let rec go n =
          if n > upto then Ok ()
          else begin
            let b = coeff /. float_of_int n in
            if f n >= b -. ulp_slack b then go (n + 1)
            else Error (Printf.sprintf "term %d = %g below harmonic minorant %g" n (f n) b)
          end
        in
        go (Stdlib.max i0 1)
      end
    | Bounded_below { bound; _ } ->
      if bound <= 0.0 then Error "Bounded_below: bound must be positive"
      else begin
        let rec go n =
          if n > upto then Ok ()
          else if f n >= bound -. ulp_slack bound then go (n + 1)
          else Error (Printf.sprintf "term %d = %g below floor %g" n (f n) bound)
        in
        go i0
      end
    | Eventually_ratio_ge_one { floor; _ } ->
      if floor <= 0.0 then Error "Eventually_ratio_ge_one: floor must be positive"
      else begin
        let rec go n =
          if n > upto then Ok ()
          else if f n < floor -. ulp_slack floor then
            Error (Printf.sprintf "term %d = %g below floor %g" n (f n) floor)
          else if n < upto && f (n + 1) < f n -. ulp_slack (f n) then
            Error (Printf.sprintf "terms decrease at %d" n)
          else go (n + 1)
        in
        go i0
      end
    | Subsequence_harmonic { index; pick; coeff } ->
      if coeff <= 0.0 then Error "Subsequence_harmonic: coeff must be positive"
      else begin
        let rec go k prev =
          let n = pick k in
          if n > upto then Ok ()
          else if n <= prev then Error (Printf.sprintf "pick not strictly increasing at %d" k)
          else begin
            let b = coeff /. float_of_int k in
            if f n >= b -. ulp_slack b then go (k + 1) n
            else Error (Printf.sprintf "term at pick %d = %d is %g, below minorant %g" k n (f n) b)
          end
        in
        go (Stdlib.max index 1) min_int
      end

  let minorant_partial_sum t n =
    match t with
    | Harmonic { index; coeff } ->
      (* sum_{k=index..n} coeff/k >= coeff * ln((n+1)/index) *)
      let i = Stdlib.max index 1 in
      if n < i then 0.0 else coeff *. log (float_of_int (n + 1) /. float_of_int i)
    | Bounded_below { index; bound } | Eventually_ratio_ge_one { index; floor = bound } ->
      if n < index then 0.0 else bound *. float_of_int (n - index + 1)
    | Subsequence_harmonic { index; pick; coeff } ->
      (* count the picks that fall below n *)
      let i = Stdlib.max index 1 in
      let rec go k acc = if pick k > n then acc else go (k + 1) (acc +. (coeff /. float_of_int k)) in
      go i 0.0

  let pp fmt = function
    | Harmonic { index; coeff } -> Format.fprintf fmt "harmonic minorant from %d: %g/n" index coeff
    | Bounded_below { index; bound } -> Format.fprintf fmt "terms >= %g from %d" bound index
    | Eventually_ratio_ge_one { index; floor } ->
      Format.fprintf fmt "nondecreasing terms >= %g from %d" floor index
    | Subsequence_harmonic { index; coeff; _ } ->
      Format.fprintf fmt "harmonic minorant %g/k along a subsequence from k=%d" coeff index
end

type verdict =
  | Converges of Interval.t
  | Diverges of { certificate : Divergence.t; partial : float; at : int }

let partial_sum ?(start = 0) f n =
  let acc = ref 0.0 in
  for k = start to n do
    acc := !acc +. f k
  done;
  !acc

let partial_sum_interval ?(start = 0) f n =
  let acc = ref Interval.zero in
  for k = start to n do
    acc := Interval.add !acc (Interval.point (f k))
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* The budgeted engine                                                  *)
(* ------------------------------------------------------------------ *)

module Budget = Ipdb_run.Budget
module Run_error = Ipdb_run.Error
module Faultinj = Ipdb_run.Faultinj

type partial = {
  enclosure : Interval.t option;
  prefix : Interval.t;
  last : int;
  requested : int;
  exhausted : Run_error.exhaustion;
}

type budgeted =
  | Complete of Interval.t
  | Exhausted of partial

(* Non-raising variant of [Tail.bound_from]: [None] when the certificate
   cannot bound the tail at [n] (finite support not yet exhausted, index
   before the certificate's start, or a non-finite bound). *)
let tail_bound_opt tail n =
  match tail with
  | Tail.Finite_support { last } -> if n > last then Some 0.0 else None
  | _ ->
    if n < Tail.start_index tail then None
    else begin
      let b = Tail.bound_from tail n in
      if Float.is_nan b || b < 0.0 then None else Some b
    end

let sum_budgeted ?(start = 0) ?(budget = Budget.unlimited) f ~tail ~upto =
  match Tail.params_ok tail with
  | Error msg -> Error (Run_error.Certificate { what = "tail certificate"; msg })
  | Ok () ->
    let check_from = Stdlib.max start (Tail.start_index tail) in
    let eval n =
      Faultinj.fire Faultinj.Term_eval;
      f n
    in
    let validate n a =
      if n < check_from then Ok ()
      else begin
        Faultinj.fire Faultinj.Certificate;
        let b = Tail.pointwise_bound tail n in
        if a <= b +. ulp_slack b then Ok ()
        else Error (Printf.sprintf "term %d = %g exceeds certified bound %g" n a b)
      end
    in
    let stop acc last exhausted =
      let enclosure =
        match tail_bound_opt tail (last + 1) with
        | Some b -> Some (Interval.add acc (Interval.make 0.0 b))
        | None -> None
      in
      Ok (Exhausted { enclosure; prefix = acc; last; requested = upto; exhausted })
    in
    let rec go n acc =
      if n > upto then begin
        match tail_bound_opt tail (upto + 1) with
        | Some b -> Ok (Complete (Interval.add acc (Interval.make 0.0 b)))
        | None ->
          Error
            (Run_error.Certificate
               { what = "tail certificate"; msg = "no tail bound at the cutoff (finite support not exhausted?)" })
      end
      else begin
        match Budget.check budget with
        | Error exhausted -> stop acc (n - 1) exhausted
        | Ok () -> (
          match eval n with
          | exception Faultinj.Injected site ->
            Error (Run_error.Injected_fault { site = Faultinj.site_name site })
          | exception e ->
            Error
              (Run_error.Certificate
                 { what = Printf.sprintf "term %d" n; msg = "term evaluation raised " ^ Printexc.to_string e })
          | a ->
            if Float.is_nan a || a < 0.0 then
              Error
                (Run_error.Certificate
                   { what = Printf.sprintf "term %d" n; msg = Printf.sprintf "term is not a non-negative number (%g)" a })
            else begin
              match validate n a with
              | exception Faultinj.Injected site ->
                Error (Run_error.Injected_fault { site = Faultinj.site_name site })
              | Error msg -> Error (Run_error.Certificate { what = "tail certificate"; msg })
              | Ok () -> go (n + 1) (Interval.add acc (Interval.point a))
            end)
      end
    in
    go start Interval.zero

let sum ?(start = 0) f ~tail ~upto =
  match sum_budgeted ~start f ~tail ~upto with
  | Ok (Complete enclosure) -> Ok enclosure
  | Ok (Exhausted _) -> Error "unlimited budget exhausted (impossible)"
  | Error e -> Error (Run_error.message e)

let sum_exn ?start f ~tail ~upto =
  match sum ?start f ~tail ~upto with Ok i -> i | Error msg -> failwith ("Series.sum: " ^ msg)

let certify_divergence ?(start = 0) f ~certificate ~upto =
  ignore start;
  match Divergence.validate certificate f ~upto with
  | Error _ as e -> e
  | Ok () -> Ok (Diverges { certificate; partial = partial_sum ~start:(Divergence.start_index certificate) f upto; at = upto })

type divergence_budgeted =
  | Div_complete of { partial : float; at : int }
  | Div_exhausted of { partial : float; minorant : float; last : int; requested : int; exhausted : Run_error.exhaustion }

exception Stop of Run_error.exhaustion

let certify_divergence_budgeted ?(start = 0) ?(budget = Budget.unlimited) f ~certificate ~upto =
  ignore start;
  (* The minorant checkers have four different traversal orders; rather than
     fusing a budget into each, the term function itself is instrumented:
     it pays one budget step per evaluation and accumulates each distinct
     index's term into the witness partial sum. *)
  let acc = ref 0.0 in
  let seen = ref min_int in
  let wrapped n =
    (match Budget.check budget with Error reason -> raise (Stop reason) | Ok () -> ());
    Faultinj.fire Faultinj.Term_eval;
    let a = f n in
    if n > !seen then begin
      seen := n;
      if not (Float.is_nan a) then acc := !acc +. a
    end;
    a
  in
  match Divergence.validate certificate wrapped ~upto with
  | exception Stop exhausted ->
    let last = if !seen = min_int then Divergence.start_index certificate - 1 else !seen in
    Ok
      (Div_exhausted
         {
           partial = !acc;
           minorant = Divergence.minorant_partial_sum certificate (Stdlib.max last 0);
           last;
           requested = upto;
           exhausted;
         })
  | exception Faultinj.Injected site -> Error (Run_error.Injected_fault { site = Faultinj.site_name site })
  | exception e ->
    Error (Run_error.Certificate { what = "divergence certificate"; msg = "term evaluation raised " ^ Printexc.to_string e })
  | Error msg -> Error (Run_error.Certificate { what = "divergence certificate"; msg })
  | Ok () -> Ok (Div_complete { partial = !acc; at = upto })

let geometric_tail_exact r n =
  let module Q = Ipdb_bignum.Q in
  if not (Q.is_probability r) || Q.is_one r then invalid_arg "Series.geometric_tail_exact: need 0 <= r < 1";
  Q.div (Q.pow r n) (Q.one_minus r)
