module Interval = Ipdb_series.Interval
module Instance = Ipdb_relational.Instance
module Eval = Ipdb_logic.Eval
module Run_error = Ipdb_run.Error

type estimate = {
  mean : float;
  samples : int;
  statistical_halfwidth : float;
  truncation_bias : float;
  confidence : float;
}

(* The [not (delta > 0 && delta < 1)] spelling also rejects NaN, which the
   naive two-sided comparison would let through — and a NaN delta silently
   poisons every downstream halfwidth. *)
let validate_params ~samples ~delta =
  if samples <= 0 then
    Error
      (Run_error.Validation
         { what = "samples"; msg = Printf.sprintf "need at least one sample, got %d" samples })
  else if not (delta > 0.0 && delta < 1.0) then
    Error
      (Run_error.Validation
         { what = "delta"; msg = Printf.sprintf "must be in (0,1), got %g" delta })
  else Ok ()

let hoeffding_halfwidth_unchecked ~samples ~delta =
  sqrt (log (2.0 /. delta) /. (2.0 *. float_of_int samples))

let hoeffding_halfwidth ~samples ~delta =
  match validate_params ~samples ~delta with
  | Error _ as e -> e
  | Ok () -> Ok (hoeffding_halfwidth_unchecked ~samples ~delta)

let interval e =
  let slack = e.statistical_halfwidth +. e.truncation_bias in
  Interval.make (Float.max 0.0 (e.mean -. slack)) (Float.min 1.0 (e.mean +. slack))

let run_sampler ~delta ~samples ~bias sample_one pred =
  match validate_params ~samples ~delta with
  | Error _ as e -> e
  | Ok () ->
    let hits = ref 0 in
    for _ = 1 to samples do
      if pred (sample_one ()) then incr hits
    done;
    Ok
      {
        mean = float_of_int !hits /. float_of_int samples;
        samples;
        statistical_halfwidth = hoeffding_halfwidth_unchecked ~samples ~delta;
        truncation_bias = bias;
        confidence = 1.0 -. delta;
      }

let event_probability_finite ?(delta = 0.01) ~samples ~rng d pred =
  run_sampler ~delta ~samples ~bias:0.0 (fun () -> Finite_pdb.sample d rng) pred

let event_probability_ti ?(delta = 0.01) ~samples ~truncate_at ~rng ti pred =
  match validate_params ~samples ~delta with
  | Error _ as e -> e
  | Ok () ->
    let fin, tv = Ti.Infinite.truncate ti ~n:truncate_at in
    run_sampler ~delta ~samples ~bias:tv (fun () -> Ti.Finite.sample fin rng) pred

let sentence_probability_bid ?(delta = 0.01) ~samples ~rng bid phi =
  run_sampler ~delta ~samples ~bias:0.0
    (fun () -> Bid.Infinite.sample bid rng)
    (fun inst -> Eval.holds inst phi)
