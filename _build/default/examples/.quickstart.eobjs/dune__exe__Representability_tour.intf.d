examples/representability_tour.mli:
