lib/core/zoo.ml: Criteria Float Ipdb_bignum Ipdb_dist Ipdb_logic Ipdb_pdb Ipdb_relational Ipdb_series List
