(** A parser for first-order formulas and view definitions.

    Concrete syntax (ASCII and the pretty-printer's Unicode both accepted):

    {v
  formula   := iff
  iff       := implies (("<->" | "↔") implies)*
  implies   := or (("->" | "→") implies)?          (right associative)
  or        := and (("|" | "∨" | "or") and)*
  and       := unary (("&" | "∧" | "and") unary)*
  unary     := ("not" | "!" | "¬") unary
             | ("exists" | "∃") var+ "." unary
             | ("forall" | "∀") var+ "." unary
             | "true" | "⊤" | "false" | "⊥f"
             | Rel "(" term ("," term)* ")" | Rel "(" ")"
             | term ("=" | "!=" | "≠") term
             | "(" formula ")"
  term      := var | int | "'" chars "'" | "⊥" | "#bot"
    v}

    Relation symbols start with an upper-case letter, variables with a
    lower-case letter or underscore. Integers and single-quoted strings are
    constants; [⊥]/[#bot] is the bottom value. Pair values have no concrete
    syntax. [Fo.to_string] output parses back to an equal formula whenever
    the formula's constants are integers, strings without spaces do not
    appear bare, and no [Pair] constants occur (property-tested for the
    integer fragment). *)

val formula : string -> (Fo.t, string) result
(** Parse a formula. The error string contains a position. *)

val formula_exn : string -> Fo.t
(** @raise Invalid_argument on a parse error. *)

val sentence : string -> (Fo.t, string) result
(** Like {!formula} but additionally rejects free variables. *)

val view_def : string -> (string * Fo.var list * Fo.t, string) result
(** Parse ["T(x,z) := body"] into a view-definition triple (for
    {!View.make}). *)

val view : string -> (View.t, string) result
(** Parse a whole view: definitions separated by [";"]. *)
