(** Shared durable-I/O discipline.

    One home for the low-level habits every persistent artifact in the
    system relies on — the journal ([lib/run/journal.ml]), the trace sink
    ([lib/obs/sink.ml]), checkpoint files ([lib/run/checkpoint.ml]) and the
    serve verdict cache ([lib/serve/cache.ml]) all write through here:

    - {b EINTR-safe write loops}: a signal landing mid-[write(2)] (SIGTERM
      during drain, SIGCHLD from a test harness) must never tear a record
      or drop bytes;
    - {b fsync-before-ack}: a record is durable before the caller
      proceeds;
    - {b atomic replace}: temp file + fsync + rename in the same
      directory, so readers observe old-or-new, never a torn file;
    - {b FNV-1a/64 checksums} and line-safe escaping, the framing
      integrity discipline shared by every on-disk format.

    This library deliberately depends only on [unix], so both [ipdb_obs]
    and [ipdb_run] (which depends on [ipdb_obs]) can build on it. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying on [EINTR] and short writes.
    @raise Unix.Unix_error on any other failure. *)

val fsync : Unix.file_descr -> unit
(** [fsync(2)], retrying on [EINTR].
    @raise Unix.Unix_error on any other failure. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory, to persist a rename. Never raises:
    not every platform allows fsync on a directory fd, and the
    write+rename alone already gives old-or-new atomicity. *)

val checksum : string -> int64
(** FNV-1a, 64-bit. Dependency-free and plenty for torn-write detection;
    an integrity check, not an adversarial MAC. *)

val escape : string -> string
(** Make arbitrary payload bytes line-safe: ['\\'] → ["\\\\"], newline →
    ["\\n"], carriage return → ["\\r"]. *)

val unescape : string -> (string, string) result
(** Total inverse of {!escape}; malformed input yields a diagnostic. *)

val atomic_replace : path:string -> string -> unit
(** Atomically replace the contents of [path]: write to a temp file in the
    same directory, fsync it, rename over [path], then best-effort fsync
    the directory. On failure the temp file is removed and the original
    [path] is untouched.
    @raise Unix.Unix_error or [Failure] on I/O trouble. *)
