(** Lifted (extensional) UCQ inference over a {!Store}.

    The engine evaluates a positive-existential sentence by
    inclusion–exclusion over its union terms (Pqe's UCQ normal form) and
    runs each conjunction through the Dalvi–Suciu extensional rules
    {e against the indexed store} rather than by grounding quantifiers
    over the active domain:

    - {e ground product}: distinct ground atoms are independent facts,
      so their conjunction is the product of stored marginals;
    - {e independent join}: variable-connected components of the open
      atoms touch disjoint fact sets, so components multiply;
    - {e independent project}: a root variable occurring in every atom
      of a component ranges over the candidate values read from the
      smallest supporting relation's index — values outside that support
      contribute a factor of 1 — giving
      [1 − ∏ᵥ (1 − Pr(body\[root := v\]))].

    A conjunction is {e safe} here when its open atoms are self-join-free
    with relations disjoint from its ground atoms' and every component
    (recursively) has a root. That is strictly more permissive than
    [Pqe.lifted_cq_probability]'s whole-CQ check: repeated {e ground}
    atoms of one relation are fine, which inclusion–exclusion relies on.

    Exact answers are rationals, independent of chunking and worker
    count. One budget step is consumed per root candidate substitution
    (and per Monte-Carlo sample), so step counts are a function of the
    data alone — never of [--jobs]. *)

module Q = Ipdb_bignum.Q
module Fo = Ipdb_logic.Fo
module Pqe = Ipdb_pdb.Pqe

type mc = { samples : int; seed : int; delta : float }
(** Monte-Carlo fallback parameters: world-sampling with a Hoeffding
    interval at confidence [1 − delta]. *)

type outcome =
  | Exact of Q.t  (** every union conjunction admitted a safe plan *)
  | Estimated of Ipdb_pdb.Estimate.estimate
      (** sampling fallback for an unsafe query; [truncation_bias = 0]
          (the store is finite), degraded sample counts on budget trips *)

val par_threshold : int
(** Root-candidate count below which a top-level independent-project
    never fans out on the pool. *)

val ucq_probability :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  Store.t ->
  Pqe.ucq ->
  (Q.t option, Ipdb_run.Error.t) result
(** Exact inclusion–exclusion. [Ok None] when some conjunction is
    unsafe or the (deduplicated) union exceeds [Pqe.max_union_terms];
    [Error] on budget exhaustion. *)

val query :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  ?mc:mc ->
  Store.t ->
  Fo.t ->
  (outcome, Ipdb_run.Error.t) result
(** Evaluate a sentence: normalise to a UCQ ([Error (Validation _)] if
    the sentence is not positive-existential), try the exact engine,
    fall back to Monte-Carlo when unsafe and [mc] was supplied
    ([Error (Validation _)] otherwise, naming the unsafe shape). *)

val independence :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  Store.t ->
  Fo.t ->
  Fo.t ->
  ((bool * Q.t * Q.t * Q.t), Ipdb_run.Error.t) result
(** Grohe–Lindner independence test: exact check of
    [Pr(Q₁ ∧ Q₂) = Pr(Q₁) · Pr(Q₂)], returning
    [(independent, p₁, p₂, p₁₂)]. The product query is the pairwise
    cross-conjunction of the two unions. Exact only — an unsafe query is
    a [Validation] error, since a sampled equality cannot certify. *)
