let max_uncertain = 20

let subsets_with_complement xs =
  let n = List.length xs in
  if n > max_uncertain then
    invalid_arg (Printf.sprintf "Worlds: %d uncertain facts exceed the enumeration gate (%d)" n max_uncertain);
  let arr = Array.of_list xs in
  let out = ref [] in
  for bits = (1 lsl n) - 1 downto 0 do
    let inc = ref [] and exc = ref [] in
    for i = n - 1 downto 0 do
      if bits land (1 lsl i) <> 0 then inc := arr.(i) :: !inc else exc := arr.(i) :: !exc
    done;
    out := (!inc, !exc) :: !out
  done;
  !out

let subsets xs = List.map fst (subsets_with_complement xs)

let cartesian lists =
  let bound = 1 lsl max_uncertain in
  let total = List.fold_left (fun acc l -> acc * Stdlib.max 1 (List.length l)) 1 lists in
  if total > bound then invalid_arg "Worlds.cartesian: product of choices exceeds the enumeration gate";
  List.fold_right (fun choices acc -> List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices) lists [ [] ]
