examples/sensor_network.ml: Format Ipdb_bignum Ipdb_core Ipdb_logic Ipdb_pdb Ipdb_series List
