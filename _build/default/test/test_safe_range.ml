(* Safe-range analysis: SRNF preserves semantics, the classifier accepts
   and rejects the textbook cases, and — the point of the exercise —
   safe-range formulas are domain independent (evaluating over an enlarged
   domain does not change the answers). *)

module Value = Ipdb_relational.Value
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module Eval = Ipdb_logic.Eval
module View = Ipdb_logic.View
module Safe_range = Ipdb_logic.Safe_range

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)
let inst facts = Instance.of_list facts

let test_srnf_shapes () =
  let f = Fo.Forall ("x", Fo.Implies (Fo.atom "R" [ Fo.v "x" ], Fo.atom "S" [ Fo.v "x" ])) in
  let n = Safe_range.srnf f in
  (* ∀x (R → S) becomes ¬∃x (R ∧ ¬S) after simplification of ¬¬ *)
  (match n with
  | Fo.Not (Fo.Exists (_, body)) ->
    let rec has_forall = function
      | Fo.Forall _ -> true
      | Fo.Implies _ | Fo.Iff _ -> true
      | Fo.True | Fo.False | Fo.Atom _ | Fo.Eq _ -> false
      | Fo.Not g | Fo.Exists (_, g) -> has_forall g
      | Fo.And (a, b) | Fo.Or (a, b) -> has_forall a || has_forall b
    in
    Alcotest.(check bool) "no ∀/→/↔ below" false (has_forall body)
  | _ -> Alcotest.failf "unexpected SRNF: %s" (Fo.to_string n));
  (* double negation elimination *)
  Alcotest.(check bool) "¬¬A = A" true
    (Safe_range.srnf (Fo.Not (Fo.Not (Fo.atom "R" [ Fo.v "x" ]))) = Fo.atom "R" [ Fo.v "x" ])

let test_classify_positive () =
  let ok phi =
    match Safe_range.classify phi with
    | Safe_range.Safe_range -> ()
    | Safe_range.Not_safe_range m -> Alcotest.failf "%s wrongly rejected: %s" (Fo.to_string phi) m
  in
  ok (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]);
  ok (Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]));
  ok (Fo.And (Fo.atom "S" [ Fo.v "x" ], Fo.Not (Fo.atom "T" [ Fo.v "x" ])));
  ok (Fo.And (Fo.atom "S" [ Fo.v "x" ], Fo.eq (Fo.v "y") (Fo.v "x")));
  ok (Fo.eq (Fo.v "x") (Fo.ci 3));
  ok (Fo.Forall ("x", Fo.Implies (Fo.atom "R" [ Fo.v "x"; Fo.v "x" ], Fo.atom "S" [ Fo.v "x" ])));
  (* the chain-completeness sentences of Lemma 5.1 are safe-range *)
  let seg =
    Ipdb_core.Segmentation.segment ~c:1
      (Ipdb_pdb.Finite_pdb.make
         (Ipdb_relational.Schema.make [ ("R", 1) ])
         [ (inst [ fact "R" [ 1 ] ], Ipdb_bignum.Q.one) ])
  in
  ok seg.Ipdb_core.Segmentation.condition

let test_classify_negative () =
  let bad phi =
    match Safe_range.classify phi with
    | Safe_range.Not_safe_range _ -> ()
    | Safe_range.Safe_range -> Alcotest.failf "%s wrongly accepted" (Fo.to_string phi)
  in
  bad (Fo.Not (Fo.atom "R" [ Fo.v "x" ]));
  bad (Fo.Or (Fo.atom "S" [ Fo.v "x" ], Fo.atom "T" [ Fo.v "y" ]));
  bad (Fo.Exists ("x", Fo.Not (Fo.atom "R" [ Fo.v "x" ])));
  bad (Fo.eq (Fo.v "x") (Fo.v "y"));
  bad (Fo.Forall ("x", Fo.atom "R" [ Fo.v "x" ]))

let test_view_check () =
  let safe = View.make [ ("T", [ "x" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])) ] in
  Alcotest.(check bool) "safe view" true (Safe_range.view_is_safe_range safe);
  let unsafe = View.make [ ("T", [ "x" ], Fo.Not (Fo.atom "S" [ Fo.v "x" ])) ] in
  Alcotest.(check bool) "unsafe view" false (Safe_range.view_is_safe_range unsafe)

(* random formulas: SRNF preserves truth; safe-range implies domain
   independence *)
let gen_formula =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let term = frequency [ (3, map Fo.v var); (1, map Fo.ci (0 -- 3)) ] in
  let atom = oneof [ map2 (fun a b -> Fo.atom "R" [ a; b ]) term term; map (fun a -> Fo.atom "S" [ a ]) term; map2 Fo.eq term term ] in
  let rec formula n =
    if n = 0 then atom
    else
      frequency
        [ (3, atom);
          (2, map2 (fun a b -> Fo.And (a, b)) (formula (n - 1)) (formula (n - 1)));
          (2, map2 (fun a b -> Fo.Or (a, b)) (formula (n - 1)) (formula (n - 1)));
          (1, map2 (fun a b -> Fo.Implies (a, b)) (formula (n - 1)) (formula (n - 1)));
          (1, map2 (fun a b -> Fo.Iff (a, b)) (formula (n - 1)) (formula (n - 1)));
          (2, map (fun a -> Fo.Not a) (formula (n - 1)));
          (2, map2 (fun x a -> Fo.Exists (x, a)) var (formula (n - 1)));
          (2, map2 (fun x a -> Fo.Forall (x, a)) var (formula (n - 1)))
        ]
  in
  formula 3

let gen_instance =
  QCheck.Gen.(
    let* n = 0 -- 6 in
    let* facts =
      list_size (return n)
        (oneof [ map2 (fun a b -> fact "R" [ a; b ]) (0 -- 3) (0 -- 3); map (fun a -> fact "S" [ a ]) (0 -- 3) ])
    in
    return (inst facts))

let arb_sentence_instance =
  QCheck.make
    ~print:(fun (phi, i) -> Fo.to_string phi ^ " on " ^ Instance.to_string i)
    QCheck.Gen.(
      let* phi = gen_formula in
      let* i = gen_instance in
      return (Fo.exists_many (Fo.free_vars phi) phi, i))

let srnf_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:800 ~name:"SRNF preserves truth" arb_sentence_instance (fun (phi, i) ->
         Eval.holds i phi = Eval.holds i (Safe_range.srnf phi)))

let arb_formula_instance =
  QCheck.make
    ~print:(fun (phi, i) -> Fo.to_string phi ^ " on " ^ Instance.to_string i)
    QCheck.Gen.(
      let* phi = gen_formula in
      let* i = gen_instance in
      return (phi, i))

let safe_range_domain_independent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:800 ~name:"safe-range ⟹ domain independent" arb_formula_instance
       (fun (phi, i) ->
         QCheck.assume (Safe_range.is_safe_range phi);
         let head = Fo.free_vars phi in
         let junk = [ vi 777; vi 888; Value.Str "junk" ] in
         let small = Eval.satisfying i head phi in
         let large = Eval.satisfying ~extra:junk i head phi in
         let norm l = List.sort_uniq (List.compare Value.compare) l in
         norm small = norm large))

let () =
  Alcotest.run "safe-range"
    [ ( "unit",
        [ Alcotest.test_case "srnf shapes" `Quick test_srnf_shapes;
          Alcotest.test_case "accepts" `Quick test_classify_positive;
          Alcotest.test_case "rejects" `Quick test_classify_negative;
          Alcotest.test_case "views" `Quick test_view_check
        ] );
      ("props", [ srnf_preserves_semantics; safe_range_domain_independent ])
    ]
