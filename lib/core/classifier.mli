(** Representability classification.

    Combines the paper's results into a verdict procedure for a certified
    countable PDB ({!Zoo.certified_family}):

    + bounded instance size ⟹ in [FO(TI)] (Corollary 5.4);
    + some capacity [c] with a certified-convergent Theorem 5.3 series ⟹ in
      [FO(TI)] (Theorem 5.3);
    + some moment with a certified-divergent series ⟹ not in [FO(TI)]
      (Proposition 3.4);
    + otherwise the criteria leave a gap (the paper has no full
      characterisation — Section 7), reported as [Undetermined].

    The procedure is sound by the paper's theorems and the series
    certificates; it is intentionally {e incomplete}, exactly as the
    paper's criteria are (Example 3.9 is determined only by the bespoke
    Lemma 3.7 argument; Example 5.6 satisfies neither criterion yet is
    trivially representable). *)

type reason =
  | Bounded_size of int  (** Corollary 5.4 *)
  | Theorem53 of { c : int; criterion_sum : Ipdb_series.Interval.t }
  | Infinite_moment of { k : int; partial : float }  (** Proposition 3.4 *)

type verdict =
  | In_FOTI of reason
  | Not_in_FOTI of reason
  | Undetermined of string
  | Partial of { exhausted : Ipdb_run.Error.exhaustion; detail : string }
      (** The budget ran out mid-search. Nothing was certified either way;
          [detail] records which criterion check was interrupted and the
          partial evidence it had gathered. *)

val classify :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  ?max_k:int -> ?max_c:int -> ?upto:int -> Zoo.certified_family -> verdict
(** Tries moments [k = 1..max_k] (default 4) and capacities
    [c = 1..max_c] (default 4), validating certificates on the first
    [upto] (default 2000) terms. The budget (default unlimited) is shared
    across all criterion checks; exhaustion aborts the search with
    {!Partial} rather than raising. With [?pool] and a budget that cannot
    trip, the independent criterion checks are fanned out across the pool
    and the verdict is selected in the canonical search order, so the
    result is identical — bit for bit — to the sequential search for any
    worker count. With a limited budget the checks keep their canonical
    order (a shared step budget must be consumed in a deterministic
    sequence) and each series parallelises internally instead. *)

(** {1 Checkpointable classification}

    A {!checkpoint} is the durable state of a classification run: the
    verdicts of the criterion checks that already concluded (keyed
    ["k1"].."k4" for moments, ["c1"].."c4" for Theorem 5.3 capacities) and
    at most one in-flight series snapshot. {!classify_resumable} replays
    completed checks from the checkpoint and resumes the in-flight one
    mid-series, so a budget-killed classification continued across any
    number of runs reaches the same verdict as a single uninterrupted
    run. *)

type checkpoint = {
  completed : (string * Criteria.series_verdict) list;
  in_flight : (string * Ipdb_series.Series.Snapshot.t) option;
}

val empty_checkpoint : checkpoint

val checkpoint_to_string : checkpoint -> string
(** Line-per-entry encoding (exact rationals throughout); suitable as an
    {!Ipdb_run.Checkpoint} payload. *)

val checkpoint_of_string : string -> (checkpoint, string) result
(** Total inverse of {!checkpoint_to_string}. *)

val classify_resumable :
  ?pool:Ipdb_par.Pool.t ->
  ?budget:Ipdb_run.Budget.t ->
  ?max_k:int ->
  ?max_c:int ->
  ?upto:int ->
  ?from:checkpoint ->
  ?save:(checkpoint -> unit) ->
  ?progress_every:int ->
  Zoo.certified_family ->
  verdict
(** {!classify} with durable progress: [from] seeds the search with a
    previous run's checkpoint, and [save] (when given) is invoked with the
    current checkpoint after every concluded check and every
    [progress_every] terms inside a running series. An in-flight snapshot
    that no longer matches its check (changed cutoff, different
    certificate index) is discarded and that check restarts cleanly. *)

val verdict_to_string : verdict -> string

val agrees_with_paper : Zoo.certified_family -> verdict -> bool
(** Whether a verdict is consistent with the paper's stated expectation
    ([Undetermined] and [Partial] are consistent with anything). *)
