lib/pdb/bid.mli: Finite_pdb Format Ipdb_bignum Ipdb_dist Ipdb_relational Ipdb_series Random Ti
