lib/pdb/pqe.mli: Ipdb_bignum Ipdb_logic Ti
