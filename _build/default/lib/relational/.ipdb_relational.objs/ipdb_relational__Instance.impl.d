lib/relational/instance.ml: Fact Format List Map Set String Value
