type t = { sign : int; mag : Nat.t }
(* Invariant: sign is -1 or 1; sign of zero is 1 so that equality is
   structural. *)

let make sign mag = if Nat.is_zero mag then { sign = 1; mag } else { sign; mag }
let zero = { sign = 1; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }
let of_nat mag = { sign = 1; mag }
let of_int n = if n < 0 then make (-1) (Nat.of_int (-n)) else make 1 (Nat.of_int n)
let to_nat a = a.mag
let sign a = if Nat.is_zero a.mag then 0 else a.sign
let is_zero a = Nat.is_zero a.mag
let is_negative a = sign a < 0

let to_int_opt a =
  match Nat.to_int_opt a.mag with
  | Some n -> Some (if a.sign < 0 then -n else n)
  | None -> None

let to_int_exn a =
  match to_int_opt a with Some n -> n | None -> failwith "Zint.to_int_exn: value too large"

let equal (a : t) (b : t) = a.sign = b.sign && Nat.equal a.mag b.mag

let compare a b =
  match (sign a, sign b) with
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | 1, _ -> Nat.compare a.mag b.mag
  | -1, _ -> Nat.compare b.mag a.mag
  | _ -> 0

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash a = Hashtbl.hash (a.sign, Nat.hash a.mag)
let neg a = make (-a.sign) a.mag
let abs a = { a with sign = 1 }

let add a b =
  if a.sign = b.sign then make a.sign (Nat.add a.mag b.mag)
  else if Nat.compare a.mag b.mag >= 0 then make a.sign (Nat.sub a.mag b.mag)
  else make b.sign (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)
let mul a b = make (a.sign * b.sign) (Nat.mul a.mag b.mag)
let mul_int a n = mul a (of_int n)
let succ a = add a one
let pred a = sub a one

(* Euclidean division: remainder is always in [0, |b|). *)
let divmod a b =
  let q0, r0 = Nat.divmod a.mag b.mag in
  if Nat.is_zero r0 then (make (a.sign * b.sign) q0, zero)
  else if a.sign > 0 then (make b.sign q0, of_nat r0)
  else
    (* a < 0: floor toward -inf on |q| then fix remainder to be positive. *)
    (make (-b.sign) (Nat.succ q0), of_nat (Nat.sub b.mag r0))

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow a k =
  if k < 0 then invalid_arg "Zint.pow: negative exponent";
  make (if a.sign < 0 && k land 1 = 1 then -1 else 1) (Nat.pow a.mag k)

let gcd a b = Nat.gcd a.mag b.mag
let to_string a = if sign a < 0 then "-" ^ Nat.to_string a.mag else Nat.to_string a.mag
let to_float a = if sign a < 0 then -.Nat.to_float a.mag else Nat.to_float a.mag

let of_string s =
  if String.length s = 0 then invalid_arg "Zint.of_string: empty string";
  match s.[0] with
  | '-' -> make (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  | '+' -> make 1 (Nat.of_string (String.sub s 1 (String.length s - 1)))
  | _ -> make 1 (Nat.of_string s)

let pp fmt a = Format.pp_print_string fmt (to_string a)
