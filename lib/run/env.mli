(** Pluggable I/O environment — the seam between the durability stack and
    the operating system.

    Every file operation performed by [Ioutil], [Journal], [Checkpoint],
    the trace sink ([lib/obs/sink.ml]) and the serve verdict cache
    ([lib/serve/cache.ml], via [Checkpoint]) goes through one of these
    records instead of calling [Unix] directly. Two backends exist:

    - {!unix}, the default, delegating straight to [Unix] (with advisory
      locking via [lockf]); and
    - the {e simulated} backend ({!Simenv}), an in-memory filesystem that
      deterministically injects seeded faults — short writes, torn writes
      at arbitrary byte offsets, [EIO]/[ENOSPC]/[EINTR], fsync lies, and
      power cuts — which is what the crash-point explorer
      ({!Crashexplore} in [ipdb.run]) sweeps over.

    The contract mirrors the narrow POSIX subset the stack actually
    relies on: open / sequential read / sequential (append) write / fsync
    / close per descriptor, plus rename / unlink / mkdir / exists on
    paths. Descriptor operations are closures captured at open time, so a
    simulated env installed mid-process never hijacks descriptors the
    real backend handed out (TCP sockets keep working while a test
    simulates disk faults). *)

type fd = {
  write : string -> int -> int -> int;
      (** [write s off len]: write up to [len] bytes of [s] from [off],
          returning the number written (short writes allowed).
          @raise Unix.Unix_error like [write(2)] (including [EINTR]). *)
  read : bytes -> int -> int -> int;
      (** [read buf off len]: read up to [len] bytes (short reads
          allowed); [0] at end of file.
          @raise Unix.Unix_error like [read(2)]. *)
  fsync : unit -> unit;
      (** Persist written data. A {e lying} backend may report success
          without persisting — exactly the failure mode the simulated
          power cut surfaces. *)
  lock : unit -> bool;
      (** Try to take the advisory exclusive lock on this descriptor's
          file without blocking; [false] if another holder refuses it.
          The unix backend uses [Unix.lockf F_TLOCK] (note POSIX
          semantics: locks are per-process, so a second open {e in the
          same process} succeeds; the simulated backend refuses, which is
          what the single-writer tests exercise). *)
  unlock : unit -> unit;  (** Release the advisory lock (best effort). *)
  close : unit -> unit;  (** @raise Unix.Unix_error on failure. *)
}

type t = {
  backend : string;  (** ["unix"] or ["sim"], for diagnostics *)
  openfile : string -> Unix.open_flag list -> Unix.file_perm -> fd;
  rename : string -> string -> unit;
  unlink : string -> unit;
  mkdir : string -> Unix.file_perm -> unit;
  exists : string -> bool;
  socket : Unix.file_descr -> fd;
      (** Wrap a connected socket descriptor for framed wire I/O. The
          unix backend is {!of_unix}; the simulated backend layers
          partition injection on top (reads/writes raise [ECONNRESET]
          while a simulated partition is in force), which is how the
          replication protocol's connection-drop handling is swept. *)
}

val unix : t
(** The default backend: straight delegation to [Unix] / [Sys]. *)

val of_unix : Unix.file_descr -> fd
(** Wrap an existing real descriptor (e.g. a connected socket) so it can
    be driven through the {!fd} operations regardless of the ambient
    environment. *)

val current : unit -> t
(** The ambient environment ({!unix} unless a test installed another). *)

val set : t -> unit
(** Install an environment globally (atomic; visible to all domains). *)

val reset : unit -> unit
(** Restore {!unix}. *)

val with_env : t -> (unit -> 'a) -> 'a
(** Run a thunk with [e] installed, restoring the previous environment
    afterwards (even on exceptions). *)
