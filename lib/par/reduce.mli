(** Deterministic ordered reduction over a pool.

    [map_fold] is the bridge between nondeterministic scheduling and
    deterministic results: items are mapped on the pool in waves, but the
    fold consumes mapped results strictly in input order, so any
    order-sensitive computation (floating-point accumulation, interval
    arithmetic, journal appends) replays exactly as a sequential loop
    would.  The window bounds how many items are in flight at once, which
    keeps memory proportional to [window], not to the (possibly huge,
    lazily produced) input sequence. *)

val map_fold :
  Pool.t ->
  ?window:int ->
  map:('a -> 'b) ->
  fold:('acc -> 'b -> ('acc, 'stop) result) ->
  init:'acc ->
  'a Seq.t ->
  ('acc, 'stop) result
(** [map_fold pool ~map ~fold ~init items] maps every item on the pool and
    folds the results in input order.  [fold] returning [Error stop] stops
    the reduction: no further items are pulled from the sequence (so a lazy
    producer stops producing) and remaining in-flight results of the
    current wave are discarded.  Returns [Ok acc] when the sequence is
    exhausted.

    [window] (default [4 * Pool.jobs pool], min 1) is the wave size: each
    wave pulls up to [window] items, maps them concurrently (a barrier),
    then folds them in order before pulling the next wave.

    The input sequence is pulled at most once per element; effectful
    sequences (e.g. budget-admission wrappers) are safe. *)
