(* Tests for the FO engine: syntax utilities, evaluation (optimised vs.
   reference), classification, views, and surgery. *)

module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module Eval = Ipdb_logic.Eval
module Classify = Ipdb_logic.Classify
module View = Ipdb_logic.View
module Surgery = Ipdb_logic.Surgery

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)
let inst facts = Instance.of_list facts

(* ------------------------------------------------------------------ *)
(* Fo syntax                                                           *)
(* ------------------------------------------------------------------ *)

let test_free_vars () =
  let f = Fo.Exists ("x", Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.Eq (Fo.v "z", Fo.ci 1))) in
  Alcotest.(check (list string)) "free vars" [ "y"; "z" ] (Fo.free_vars f);
  Alcotest.(check bool) "not sentence" false (Fo.is_sentence f);
  Alcotest.(check bool) "sentence" true (Fo.is_sentence (Fo.exists_many [ "y"; "z" ] f))

let test_constants_relations () =
  let f = Fo.And (Fo.atom "R" [ Fo.ci 1; Fo.v "x" ], Fo.atom "S" [ Fo.cs "a" ]) in
  Alcotest.(check int) "constants" 2 (List.length (Fo.constants f));
  Alcotest.(check (list (pair string int))) "relations" [ ("R", 2); ("S", 1) ] (Fo.relations f)

let test_substitute_capture () =
  (* substituting y for x under ∃y must rename the binder *)
  let f = Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]) in
  let g = Fo.substitute "x" (Fo.v "y") f in
  (* after substitution, y must still be free in g *)
  Alcotest.(check (list string)) "y free after subst" [ "y" ] (Fo.free_vars g);
  match g with
  | Fo.Exists (b, Fo.Atom ("R", [ Fo.V fv; Fo.V bv ])) ->
    Alcotest.(check bool) "binder renamed" true (not (String.equal b "y"));
    Alcotest.(check string) "free occurrence" "y" fv;
    Alcotest.(check string) "bound occurrence" b bv
  | _ -> Alcotest.fail "unexpected shape"

let test_conj_disj () =
  Alcotest.(check bool) "empty conj" true (Fo.conj [] = Fo.True);
  Alcotest.(check bool) "empty disj" true (Fo.disj [] = Fo.False);
  Alcotest.(check bool) "conj false" true (Fo.conj [ Fo.True; Fo.False ] = Fo.False);
  Alcotest.(check bool) "disj true" true (Fo.disj [ Fo.False; Fo.True ] = Fo.True)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let i1 = inst [ fact "R" [ 1; 2 ]; fact "R" [ 2; 3 ]; fact "S" [ 1 ] ]

let test_eval_basic () =
  let holds phi = Eval.holds i1 phi in
  Alcotest.(check bool) "atom true" true (holds (Fo.atom "R" [ Fo.ci 1; Fo.ci 2 ]));
  Alcotest.(check bool) "atom false" false (holds (Fo.atom "R" [ Fo.ci 2; Fo.ci 2 ]));
  Alcotest.(check bool) "exists" true (holds (Fo.Exists ("x", Fo.atom "R" [ Fo.ci 1; Fo.v "x" ])));
  Alcotest.(check bool) "forall fails" false (holds (Fo.Forall ("x", Fo.atom "S" [ Fo.v "x" ])));
  Alcotest.(check bool) "path" true
    (holds (Fo.exists_many [ "x"; "y"; "z" ] (Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "R" [ Fo.v "y"; Fo.v "z" ]))));
  Alcotest.(check bool) "implication" true
    (holds (Fo.forall_many [ "x"; "y" ] (Fo.Implies (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.Not (Fo.Eq (Fo.v "x", Fo.v "y"))))))

let test_counting_quantifiers () =
  let phi_s = Fo.atom "S" [ Fo.v "x" ] in
  Alcotest.(check bool) "at most one S" true (Eval.holds i1 (Fo.at_most_one "x" phi_s));
  Alcotest.(check bool) "exactly one S" true (Eval.holds i1 (Fo.exactly_one "x" phi_s));
  let phi_r = Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]) in
  Alcotest.(check bool) "not at most one R source" false (Eval.holds i1 (Fo.at_most_one "x" phi_r))

let test_satisfying () =
  let tuples = Eval.satisfying i1 [ "x"; "y" ] (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]) in
  Alcotest.(check int) "two R tuples" 2 (List.length tuples);
  let tuples = Eval.satisfying i1 [ "x" ] (Fo.Exists ("y", Fo.atom "R" [ Fo.v "y"; Fo.v "x" ])) in
  Alcotest.(check int) "two R targets" 2 (List.length tuples)

(* Random formula generator for the optimised-vs-naive equivalence test. *)
let gen_formula =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z"; "u" ] in
  let term = oneof [ map Fo.v var; map Fo.ci (0 -- 4) ] in
  let atom = oneof [ map2 (fun a b -> Fo.atom "R" [ a; b ]) term term; map (fun a -> Fo.atom "S" [ a ]) term; map2 Fo.eq term term ] in
  let rec formula n =
    if n = 0 then atom
    else
      frequency
        [ (3, atom);
          (2, map2 (fun a b -> Fo.And (a, b)) (formula (n - 1)) (formula (n - 1)));
          (2, map2 (fun a b -> Fo.Or (a, b)) (formula (n - 1)) (formula (n - 1)));
          (1, map2 (fun a b -> Fo.Implies (a, b)) (formula (n - 1)) (formula (n - 1)));
          (1, map2 (fun a b -> Fo.Iff (a, b)) (formula (n - 1)) (formula (n - 1)));
          (2, map (fun a -> Fo.Not a) (formula (n - 1)));
          (3, map2 (fun x a -> Fo.Exists (x, a)) var (formula (n - 1)));
          (3, map2 (fun x a -> Fo.Forall (x, a)) var (formula (n - 1)))
        ]
  in
  formula 4

let gen_instance =
  QCheck.Gen.(
    let* n = 0 -- 6 in
    let* facts =
      list_size (return n)
        (oneof
           [ map2 (fun a b -> fact "R" [ a; b ]) (0 -- 4) (0 -- 4);
             map (fun a -> fact "S" [ a ]) (0 -- 4)
           ])
    in
    return (inst facts))

let arb_closed_formula_and_instance =
  QCheck.make
    ~print:(fun (phi, i) -> Fo.to_string phi ^ " on " ^ Instance.to_string i)
    QCheck.Gen.(
      let* phi = gen_formula in
      let* i = gen_instance in
      let closed = Fo.exists_many (Fo.free_vars phi) phi in
      return (closed, i))

let eval_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:1000 ~name:"optimised eval = reference eval" arb_closed_formula_and_instance
       (fun (phi, i) -> Eval.holds i phi = Eval.holds_naive i phi))

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let cq = Fo.Exists ("y", Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "S" [ Fo.v "y" ])) in
  Alcotest.(check bool) "cq is cq" true (Classify.is_cq cq);
  Alcotest.(check bool) "cq is ucq" true (Classify.is_ucq cq);
  let ucq = Fo.Or (cq, Fo.atom "S" [ Fo.v "x" ]) in
  Alcotest.(check bool) "ucq not cq" false (Classify.is_cq ucq);
  Alcotest.(check bool) "ucq is ucq" true (Classify.is_ucq ucq);
  let neg = Fo.Not cq in
  Alcotest.(check bool) "negation not ucq" false (Classify.is_ucq neg);
  Alcotest.(check bool) "forall not ucq" false (Classify.is_ucq (Fo.Forall ("x", Fo.atom "S" [ Fo.v "x" ])))

let monotone_spot_check =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"positive-existential formulas are monotone"
       (QCheck.make
          QCheck.Gen.(
            let* i = gen_instance in
            let* extra = gen_instance in
            return (i, Instance.union i extra)))
       (fun (small, large) ->
         let phi = Fo.Exists ("y", Fo.Or (Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "S" [ Fo.v "y" ]), Fo.atom "S" [ Fo.v "x" ])) in
         Classify.semantically_monotone_on phi [ "x" ] [ (small, large) ]))

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let test_view_apply () =
  let v =
    View.make
      [ ("T", [ "x"; "z" ],
         Fo.Exists ("y", Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "R" [ Fo.v "y"; Fo.v "z" ]))) ]
  in
  let out = View.apply v i1 in
  Alcotest.(check int) "one path" 1 (Instance.size out);
  Alcotest.(check bool) "1->3" true (Instance.mem (fact "T" [ 1; 3 ]) out)

let test_view_validation () =
  Alcotest.check_raises "free var outside head"
    (Invalid_argument "View.make: T has free variable y outside its head") (fun () ->
      ignore (View.make [ ("T", [ "x" ], Fo.atom "R" [ Fo.v "x"; Fo.v "y" ]) ]));
  Alcotest.check_raises "duplicate head var" (Invalid_argument "View.make: repeated head variable in T")
    (fun () -> ignore (View.make [ ("T", [ "x"; "x" ], Fo.atom "R" [ Fo.v "x"; Fo.v "x" ]) ]))

let test_view_identity () =
  let schema = Schema.make [ ("R", 2); ("S", 1) ] in
  let v = View.identity schema in
  Alcotest.(check bool) "identity" true (Instance.equal i1 (View.apply v i1))

let test_view_constants_invention () =
  (* A view can invent constants not in the input's active domain. *)
  let v = View.make [ ("T", [ "x" ], Fo.Or (Fo.atom "S" [ Fo.v "x" ], Fo.Eq (Fo.v "x", Fo.ci 99))) ] in
  let out = View.apply v i1 in
  Alcotest.(check bool) "invented constant" true (Instance.mem (fact "T" [ 99 ]) out)

(* ------------------------------------------------------------------ *)
(* Surgery                                                             *)
(* ------------------------------------------------------------------ *)

let test_relativize () =
  let phi = Fo.Exists ("x", Fo.And (Fo.atom "R" [ Fo.v "x" ], Fo.Not (Fo.atom "S" [ Fo.v "x" ]))) in
  let rel = Surgery.relativize ~rename:(fun r -> r ^ "'") ~tag:(Fo.ci 7) phi in
  (match rel with
  | Fo.Exists (_, Fo.And (Fo.Atom ("R'", [ Fo.C (Value.Int 7); _ ]), Fo.Not (Fo.Atom ("S'", [ Fo.C (Value.Int 7); _ ])))) -> ()
  | _ -> Alcotest.fail ("unexpected relativization: " ^ Fo.to_string rel));
  (* a variable tag that clashes with a binder forces a rename *)
  let rel2 = Surgery.relativize ~rename:(fun r -> r ^ "'") ~tag:(Fo.v "x") phi in
  match rel2 with
  | Fo.Exists (b, Fo.And (Fo.Atom ("R'", [ Fo.V "x"; Fo.V b' ]), _)) ->
    Alcotest.(check bool) "binder renamed away from tag" true (not (String.equal b "x"));
    Alcotest.(check string) "binder used" b b'
  | _ -> Alcotest.fail ("unexpected relativization: " ^ Fo.to_string rel2)

let test_hardcode_instance () =
  (* φ0 holds exactly on the preimages of d0 under the view *)
  let v = View.make [ ("T", [ "x" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])) ] in
  let d0 = inst [ fact "T" [ 1 ] ] in
  let phi0 = Surgery.hardcode_instance_sentence v d0 in
  Alcotest.(check bool) "preimage satisfies" true (Eval.holds (inst [ fact "R" [ 1; 2 ] ]) phi0);
  Alcotest.(check bool) "preimage with extra R fact from 1" true
    (Eval.holds (inst [ fact "R" [ 1; 2 ]; fact "R" [ 1; 3 ] ]) phi0);
  Alcotest.(check bool) "non-preimage fails (extra source)" false
    (Eval.holds (inst [ fact "R" [ 1; 2 ]; fact "R" [ 4; 2 ] ]) phi0);
  Alcotest.(check bool) "non-preimage fails (empty)" false (Eval.holds Instance.empty phi0)

let test_guarded_union () =
  let v1 = View.make [ ("T", [ "x" ], Fo.atom "S" [ Fo.v "x" ]) ] in
  let v2 = View.make [ ("T", [ "w" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "w"; Fo.v "y" ])) ] in
  let guard = Fo.atom "S" [ Fo.ci 1 ] in
  let gu = Surgery.guarded_union v1 v2 guard in
  (* guard true on i1: T = S *)
  Alcotest.(check bool) "then-branch" true (Instance.equal (inst [ fact "T" [ 1 ] ]) (View.apply gu i1));
  (* guard false: T = R sources *)
  let i2 = inst [ fact "R" [ 1; 2 ]; fact "R" [ 2; 3 ] ] in
  Alcotest.(check bool) "else-branch" true
    (Instance.equal (inst [ fact "T" [ 1 ]; fact "T" [ 2 ] ]) (View.apply gu i2))

let () =
  Alcotest.run "logic"
    [ ( "fo",
        [ Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "constants/relations" `Quick test_constants_relations;
          Alcotest.test_case "capture-avoiding substitution" `Quick test_substitute_capture;
          Alcotest.test_case "conj/disj" `Quick test_conj_disj
        ] );
      ( "eval",
        [ Alcotest.test_case "basics" `Quick test_eval_basic;
          Alcotest.test_case "counting quantifiers" `Quick test_counting_quantifiers;
          Alcotest.test_case "satisfying assignments" `Quick test_satisfying;
          eval_equivalence
        ] );
      ("classify", [ Alcotest.test_case "fragments" `Quick test_classify; monotone_spot_check ]);
      ( "views",
        [ Alcotest.test_case "apply" `Quick test_view_apply;
          Alcotest.test_case "validation" `Quick test_view_validation;
          Alcotest.test_case "identity" `Quick test_view_identity;
          Alcotest.test_case "constant invention" `Quick test_view_constants_invention
        ] );
      ( "surgery",
        [ Alcotest.test_case "relativize" `Quick test_relativize;
          Alcotest.test_case "hardcode instance sentence" `Quick test_hardcode_instance;
          Alcotest.test_case "guarded union" `Quick test_guarded_union
        ] )
    ]
