test/test_lineage.mli:
