examples/car_accidents.ml: Format Ipdb_bignum Ipdb_core Ipdb_logic Ipdb_pdb Ipdb_relational Ipdb_series List Random
