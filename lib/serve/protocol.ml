(* Wire protocol: journal-style length-prefixed line framing plus the
   request/response grammar. See protocol.mli for the contract. *)

let version = "ipdbs1"
let magic = version
let package_version = "1.0.0"
let max_payload = 65536

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  Printf.sprintf "%s %d %s\n" magic (String.length payload) (Ioutil.escape payload)

let parse_frame line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt line ' ' with
  | None -> fail "missing frame header"
  | Some sp1 -> (
      if String.sub line 0 sp1 <> magic then
        fail "bad magic (expected %s)" magic
      else
        match String.index_from_opt line (sp1 + 1) ' ' with
        | None -> fail "truncated header (no length field)"
        | Some sp2 -> (
            let len_s = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
            let body = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
            match int_of_string_opt len_s with
            | None -> fail "unparsable length %S" len_s
            | Some len when len < 0 -> fail "negative length"
            | Some len when len > max_payload ->
                fail "frame too large (%d bytes, limit %d)" len max_payload
            | Some len -> (
                match Ioutil.unescape body with
                | Error m -> fail "payload: %s" m
                | Ok payload ->
                    if String.length payload <> len then
                      fail "length mismatch: header says %d, payload has %d" len
                        (String.length payload)
                    else Ok payload)))

(* A frame is one line; the escaped form of a max_payload payload plus its
   header is bounded, so a reader that saw this many bytes without a
   newline is looking at garbage and can stop. *)
let max_line = (2 * max_payload) + 64

(* Sockets route through the ambient environment's dedicated [socket]
   wrapper: the unix backend is a plain [Env.of_unix], and the simulated
   backend only layers partition injection on top — its filesystem tables
   never see wire bytes, so a simulated disk fault cannot swallow them
   while a simulated partition can sever them deterministically. *)
let socket_fd fd = (Ipdb_env.Env.current ()).Ipdb_env.Env.socket fd

(* A buffered frame reader. [read(2)] hands back whatever the kernel has,
   which on a streaming connection routinely spans a frame boundary; the
   bytes past the newline belong to the {e next} frame and must be carried
   over, not dropped. One-frame-per-connection callers can use the plain
   {!read_frame} wrapper; anything reading several frames off one socket
   (the replication tail) must reuse a single [reader]. *)
type reader = { rfd : Unix.file_descr; mutable pending : string }

let reader fd = { rfd = fd; pending = "" }

(* [deadline] is an absolute [Unix.gettimeofday] instant bounding the
   whole multi-read frame assembly: a server trickling one byte per
   [SO_RCVTIMEO] interval can stretch each blocking read's clock but not
   the total, because we wait for readability with [select] against the
   time remaining before every read. *)
let read_frame_r ?deadline r =
  let fd = r.rfd in
  let sfd = socket_fd fd in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let wait_readable () =
    match deadline with
    | None -> Ok ()
    | Some d ->
        let rec sel () =
          let remaining = d -. Unix.gettimeofday () in
          if remaining <= 0. then Error "read deadline exceeded"
          else
            match Unix.select [ fd ] [] [] remaining with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> sel ()
            | exception Unix.Unix_error (e, _, _) ->
                Error (Printf.sprintf "read failed: %s" (Unix.error_message e))
            | [], _, _ -> Error "read deadline exceeded"
            | _ -> Ok ()
        in
        sel ()
  in
  (* Fold freshly-arrived bytes: up to the first newline completes the
     frame, everything after it is carried for the next call. *)
  let consume s =
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.add_string buf (String.sub s 0 i);
        r.pending <- String.sub s (i + 1) (String.length s - i - 1);
        Some (parse_frame (Buffer.contents buf))
    | None ->
        Buffer.add_string buf s;
        if Buffer.length buf > max_line then Some (Error "frame exceeds line limit") else None
  in
  let rec go () =
    match wait_readable () with
    | Error _ as e -> e
    | Ok () -> (
        match sfd.Ipdb_env.Env.read chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read failed: %s" (Unix.error_message e))
        | 0 ->
            if Buffer.length buf = 0 then Error "connection closed before a frame arrived"
            else Error "connection closed mid-frame"
        | n -> (
            match consume (Bytes.sub_string chunk 0 n) with Some res -> res | None -> go ()))
  in
  let carried = r.pending in
  r.pending <- "";
  if carried <> "" then (match consume carried with Some res -> res | None -> go ())
  else go ()

let read_frame ?deadline fd = read_frame_r ?deadline (reader fd)

let write_frame fd payload = Ioutil.write_all (socket_fd fd) (frame payload)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Version
  | Stats
  | Health
  | Promote
  | Repl of { proto : string; cachefmt : string; package : string; pos : int; epoch : int }
  | Classify of { family : string; upto : int }
  | Moments of { family : string; k : int; upto : int }
  | Criterion of { family : string; c : int; upto : int }
  | Pqe of { ti : string; query : string }
  | Kb of { query : string }

type budget_opts = { timeout : float option; max_steps : int option }

let no_budget = { timeout = None; max_steps = None }
let default_upto = 2000

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* key=value parameters shared by the series ops *)
type params = {
  mutable upto : int;
  mutable k : int;
  mutable c : int;
  mutable p_timeout : float option;
  mutable p_max_steps : int option;
}

let parse_params words =
  let p = { upto = default_upto; k = 1; c = 1; p_timeout = None; p_max_steps = None } in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let pos_int name v k =
    match int_of_string_opt v with
    | Some n when n > 0 -> k n
    | _ -> err "parameter %s needs a positive integer, got %S" name v
  in
  let rec go = function
    | [] -> Ok p
    | w :: rest -> (
        match String.index_opt w '=' with
        | None -> err "malformed parameter %S (expected name=value)" w
        | Some eq -> (
            let name = String.sub w 0 eq in
            let v = String.sub w (eq + 1) (String.length w - eq - 1) in
            match name with
            | "upto" -> pos_int name v (fun n -> p.upto <- n; go rest)
            | "k" -> pos_int name v (fun n -> p.k <- n; go rest)
            | "c" -> pos_int name v (fun n -> p.c <- n; go rest)
            | "max_steps" -> pos_int name v (fun n -> p.p_max_steps <- Some n; go rest)
            | "timeout" -> (
                match float_of_string_opt v with
                | Some t when t > 0. && Float.is_finite t ->
                    p.p_timeout <- Some t;
                    go rest
                | _ -> err "parameter timeout needs a positive number, got %S" v)
            | _ -> err "unknown parameter %S" name))
  in
  go words

let budget_of_params p = { timeout = p.p_timeout; max_steps = p.p_max_steps }

let parse_request payload =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match split_words payload with
  | [] -> err "empty request"
  | [ "version" ] -> Ok (Version, no_budget)
  | [ "stats" ] -> Ok (Stats, no_budget)
  | [ "health" ] -> Ok (Health, no_budget)
  | [ "promote" ] -> Ok (Promote, no_budget)
  | "version" :: _ | "stats" :: _ | "health" :: _ | "promote" :: _ ->
      err "this op takes no arguments"
  | [ "repl"; proto; cachefmt; package; pos_w; epoch_w ] -> (
      let field name w =
        let prefix = name ^ "=" in
        let pl = String.length prefix in
        if String.length w > pl && String.sub w 0 pl = prefix then
          int_of_string_opt (String.sub w pl (String.length w - pl))
        else None
      in
      match (field "pos" pos_w, field "epoch" epoch_w) with
      | Some pos, Some epoch when pos >= 0 && epoch >= 0 ->
          Ok (Repl { proto; cachefmt; package; pos; epoch }, no_budget)
      | _ -> err "repl needs pos=N epoch=E with non-negative integers")
  | "repl" :: _ -> err "repl needs PROTO CACHEFMT PACKAGE pos=N epoch=E"
  | "classify" :: family :: rest ->
      Result.bind (parse_params rest) (fun p ->
          Ok (Classify { family; upto = p.upto }, budget_of_params p))
  | "moments" :: family :: rest ->
      Result.bind (parse_params rest) (fun p ->
          Ok (Moments { family; k = p.k; upto = p.upto }, budget_of_params p))
  | "criterion" :: family :: rest ->
      Result.bind (parse_params rest) (fun p ->
          Ok (Criterion { family; c = p.c; upto = p.upto }, budget_of_params p))
  | "pqe" :: ti :: (_ :: _ as query) -> Ok (Pqe { ti; query = String.concat " " query }, no_budget)
  | "pqe" :: _ -> err "pqe needs a PDB name and a sentence"
  | "kb" :: (_ :: _ as query) -> Ok (Kb { query = String.concat " " query }, no_budget)
  | "kb" :: _ -> err "kb needs a sentence"
  | [ ("classify" | "moments" | "criterion") ] -> err "missing FAMILY argument"
  | op :: _ ->
      err "unknown op %S (version|stats|health|promote|repl|classify|moments|criterion|pqe|kb)" op

let request_to_payload req opts =
  let budget =
    (match opts.timeout with Some t -> [ Printf.sprintf "timeout=%g" t ] | None -> [])
    @ match opts.max_steps with Some n -> [ Printf.sprintf "max_steps=%d" n ] | None -> []
  in
  let words =
    match req with
    | Version -> [ "version" ]
    | Stats -> [ "stats" ]
    | Health -> [ "health" ]
    | Promote -> [ "promote" ]
    | Repl { proto; cachefmt; package; pos; epoch } ->
        [ "repl"; proto; cachefmt; package; Printf.sprintf "pos=%d" pos; Printf.sprintf "epoch=%d" epoch ]
    | Classify { family; upto } -> [ "classify"; family; Printf.sprintf "upto=%d" upto ] @ budget
    | Moments { family; k; upto } ->
        [ "moments"; family; Printf.sprintf "k=%d" k; Printf.sprintf "upto=%d" upto ] @ budget
    | Criterion { family; c; upto } ->
        [ "criterion"; family; Printf.sprintf "c=%d" c; Printf.sprintf "upto=%d" upto ] @ budget
    | Pqe { ti; query } -> [ "pqe"; ti; query ]
    | Kb { query } -> [ "kb"; query ]
  in
  String.concat " " words

module Serialize = Ipdb_pdb.Serialize

(* [kb_digest] is the content address of the loaded knowledge base (the
   ipdbkb1 file's FNV-1a/64 digest): a kb answer is only valid for the
   exact fact set it was computed over, so the digest is part of the key
   and a daemon with no kb loaded caches nothing for the op. *)
let cache_key ?kb_digest = function
  | Version | Stats | Health | Promote | Repl _ -> None
  | Classify { family; upto } ->
      Some (Serialize.canonical_key ~op:"classify" [ ("family", family); ("upto", string_of_int upto) ])
  | Moments { family; k; upto } ->
      Some
        (Serialize.canonical_key ~op:"moments"
           [ ("family", family); ("k", string_of_int k); ("upto", string_of_int upto) ])
  | Criterion { family; c; upto } ->
      Some
        (Serialize.canonical_key ~op:"criterion"
           [ ("family", family); ("c", string_of_int c); ("upto", string_of_int upto) ])
  | Pqe { ti; query } ->
      (* Canonicalise the sentence through the parser so spelling variants
         of one query share a cache slot; unparsable sentences get no key
         (the request is about to fail with status 2 anyway). *)
      let query =
        match Ipdb_logic.Parser.sentence query with
        | Ok phi -> Ipdb_logic.Fo.to_string phi
        | Error _ -> query
      in
      Some (Serialize.canonical_key ~op:"pqe" [ ("ti", ti); ("query", query) ])
  | Kb { query } -> (
      match kb_digest with
      | None -> None
      | Some digest ->
          let query =
            match Ipdb_logic.Parser.sentence query with
            | Ok phi -> Ipdb_logic.Fo.to_string phi
            | Error _ -> query
          in
          Some
            (Serialize.canonical_key ~op:"kb"
               [ ("digest", Printf.sprintf "%016Lx" digest); ("query", query) ]))

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type status =
  | Ok_positive
  | Certified_negative
  | Bad_request
  | Partial
  | Internal
  | Busy
  | Proto
  | Stale

let status_token = function
  | Ok_positive -> "0"
  | Certified_negative -> "1"
  | Bad_request -> "2"
  | Partial -> "3"
  | Internal -> "4"
  | Busy -> "E_BUSY"
  | Proto -> "E_PROTO"
  | Stale -> "E_STALE"

let status_of_token = function
  | "0" -> Some Ok_positive
  | "1" -> Some Certified_negative
  | "2" -> Some Bad_request
  | "3" -> Some Partial
  | "4" -> Some Internal
  | "E_BUSY" -> Some Busy
  | "E_PROTO" -> Some Proto
  | "E_STALE" -> Some Stale
  | _ -> None

let status_exit_code = function
  | Ok_positive -> 0
  | Certified_negative -> 1
  | Bad_request -> 2
  | Partial -> 3
  | Internal -> 4
  | Busy -> 3
  | Proto -> 2
  | Stale -> 3

type response = { status : status; body : string }

let render_response { status; body } =
  if body = "" then status_token status else status_token status ^ " " ^ body

let parse_response payload =
  let token, body =
    match String.index_opt payload ' ' with
    | None -> (payload, "")
    | Some sp -> (String.sub payload 0 sp, String.sub payload (sp + 1) (String.length payload - sp - 1))
  in
  match status_of_token token with
  | Some status -> Ok { status; body }
  | None -> Error (Printf.sprintf "unknown status token %S" token)

let cacheable = function
  | Ok_positive | Certified_negative -> true
  | Bad_request | Partial | Internal | Busy | Proto | Stale -> false
