(* Atomic checkpoint files: temp file + fsync + rename in the same
   directory, with a checksummed header so partial or corrupted payloads
   are detected on load rather than silently resumed from. *)

let magic = "ipdbc1"
let format_version = magic

module Metrics = Ipdb_obs.Metrics
module Trace = Ipdb_obs.Trace

let m_saves = Metrics.counter "checkpoint.saves"
let m_loads = Metrics.counter "checkpoint.loads"
let m_bytes = Metrics.counter "checkpoint.bytes"

let io path msg =
  let e = Error.Io { path; msg } in
  Error.emit e;
  Error e

let invalid path msg =
  let e = Error.Validation { what = "checkpoint " ^ path; msg } in
  Error.emit e;
  Error e

let frame payload =
  Printf.sprintf "%s %d %016Lx\n%s" magic (String.length payload)
    (Journal.checksum payload) payload

let save ~path payload =
  match Ioutil.atomic_replace ~path (frame payload) with
  | () ->
      Metrics.incr m_saves;
      Metrics.add m_bytes (String.length payload);
      Trace.event "checkpoint.saved"
        ~attrs:
          [ ("path", Ipdb_obs.Json.String path);
            ("bytes", Ipdb_obs.Json.Int (String.length payload)) ];
      Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      io path (Printf.sprintf "checkpoint write failed: %s" (Unix.error_message e))
  | exception Sys_error m -> io path m
  | exception Failure m -> io path (Printf.sprintf "checkpoint write failed: %s" m)

let load ~path =
  if not ((Ipdb_env.Env.current ()).Ipdb_env.Env.exists path) then Ok None
  else
    match Ioutil.read_file path with
    | Error m -> io path m
    | Ok text -> (
        match String.index_opt text '\n' with
        | None -> invalid path "missing header line"
        | Some nl -> (
            let header = String.sub text 0 nl in
            let payload = String.sub text (nl + 1) (String.length text - nl - 1) in
            match String.split_on_char ' ' header with
            | [ m; len_s; sum_s ] when m = magic -> (
                match (int_of_string_opt len_s, Int64.of_string_opt ("0x" ^ sum_s)) with
                | None, _ ->
                    invalid path (Printf.sprintf "unparsable length %S in header" len_s)
                | _, None ->
                    invalid path (Printf.sprintf "unparsable checksum %S in header" sum_s)
                | Some len, Some sum ->
                    if String.length payload <> len then
                      invalid path
                        (Printf.sprintf
                           "length mismatch: header says %d bytes, payload has %d"
                           len (String.length payload))
                    else if Journal.checksum payload <> sum then
                      invalid path "checksum mismatch"
                    else begin
                      Metrics.incr m_loads;
                      Ok (Some payload)
                    end)
            | m :: _ when m <> magic ->
                invalid path (Printf.sprintf "bad magic %S (expected %s)" m magic)
            | _ -> invalid path "malformed header line"))
