(* Section 6 of the paper: logical vs. arithmetical reasons for
   (non-)representability. Given only a sample space (an incomplete
   database), can we decide membership in FO(TI)? Theorem 6.7 says: yes
   when the sizes are bounded; otherwise the sample space underlies both a
   representable PDB (Lemma 6.5) and a non-representable one (Lemma 6.6).

   Run with: dune exec examples/idb_dichotomy.exe *)

module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Interval = Ipdb_series.Interval
module Family = Ipdb_pdb.Family
module Idb = Ipdb_core.Idb
module Criteria = Ipdb_core.Criteria

let idb_of_sizes name sizes_fn =
  Idb.make ~name
    ~schema:(Schema.make [ ("R", 1) ])
    ~instance:(fun n ->
      Instance.of_list (List.init (sizes_fn n) (fun j -> Fact.make "R" [ Value.Pair (Value.Int n, Value.Int j) ])))
    ~size:sizes_fn ~start:1 ()

let describe idb =
  Format.printf "@.IDB '%s' (max size on first 60 worlds: %d)@." idb.Idb.name (Idb.max_size_on idb ~upto:60);
  match Idb.theorem67 idb ~upto:60 with
  | Idb.Bounded_hence_representable b ->
    Format.printf "  bounded by %d ⟹ EVERY probability assignment is in FO(TI) (Cor. 5.4)@." b
  | Idb.Unbounded_hence_undetermined { in_foti; not_in_foti } ->
    Format.printf "  unbounded ⟹ the sample space cannot decide membership:@.";
    (* Lemma 6.5 witness *)
    (match Family.total_probability in_foti ~upto:80 with
    | Ok t ->
      Format.printf "   • Lemma 6.5 weights x_i = (2^-i/|D_i|)^|D_i| sum to [%.6f, %.6f];@."
        (Interval.lo t) (Interval.hi t)
    | Error e -> Format.printf "   • Lemma 6.5 check failed: %s@." e);
    (match
       Criteria.theorem53_verdict in_foti ~c:1 ~cert:(Idb.lemma65_criterion_cert idb ~upto:80) ~upto:80
     with
    | Criteria.Finite_sum e ->
      Format.printf "     Thm 5.3 series (c=1) ∈ [%.6g, %.6g] < ∞ ⟹ this PDB IS in FO(TI)@."
        (Interval.lo e) (Interval.hi e)
    | _ -> Format.printf "     unexpected verdict@.");
    (* Lemma 6.6 witness *)
    (match
       Criteria.moment_verdict not_in_foti ~k:1 ~cert:(Idb.lemma66_divergence_cert_for idb) ~upto:1500
     with
    | Criteria.Infinite_sum { partial; at } ->
      Format.printf "   • Lemma 6.6 weights c/k² on the growing subsequence: E(|D|) = ∞@.";
      Format.printf "     (certified harmonic minorant; partial sum %.3f after %d terms)@." partial at;
      Format.printf "     ⟹ this PDB is NOT in FO(TI) (Prop. 3.4)@."
    | _ -> Format.printf "     unexpected verdict@.")

let () =
  Format.printf "=== Theorem 6.7: what the sample space alone decides ===@.";
  describe (idb_of_sizes "bounded-rotation" (fun n -> 1 + (n mod 3)));
  describe (idb_of_sizes "linear-growth" (fun n -> n));
  describe (idb_of_sizes "gappy-powers" (fun n -> 1 lsl n));
  (* sizes grow but only along a sparse subsequence *)
  describe (idb_of_sizes "sparse-growth" (fun n -> if n mod 5 = 0 then n / 5 else 1));
  Format.printf
    "@.Conclusion (Thm 6.7): with unbounded instance sizes, any (non-)representability@.\
     argument must look at the probabilities — there are no purely logical reasons@.\
     to exclude a PDB from FO(TI) (Lemma 6.5).@."
