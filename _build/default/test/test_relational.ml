(* Tests for the relational substrate. *)

module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)

let test_value_order () =
  Alcotest.(check bool) "bot smallest" true (Value.compare Value.Bot (vi 0) < 0);
  Alcotest.(check bool) "int < str" true (Value.compare (vi 5) (Value.Str "a") < 0);
  Alcotest.(check bool) "str < pair" true (Value.compare (Value.Str "z") (Value.Pair (vi 0, vi 0)) < 0);
  Alcotest.(check bool) "pair lex" true
    (Value.compare (Value.Pair (vi 1, vi 9)) (Value.Pair (vi 2, vi 0)) < 0);
  Alcotest.(check string) "print pair" "(1,a)" (Value.to_string (Value.Pair (vi 1, Value.Str "a")));
  Alcotest.(check bool) "is_bot" true (Value.is_bot Value.Bot)

let test_schema () =
  let s = Schema.make [ ("R", 2); ("S", 1) ] in
  Alcotest.(check (option int)) "arity R" (Some 2) (Schema.arity s "R");
  Alcotest.(check (option int)) "unknown" None (Schema.arity s "T");
  Alcotest.(check int) "max arity" 2 (Schema.max_arity s);
  Alcotest.check_raises "empty" (Invalid_argument "Schema.make: empty schema") (fun () ->
      ignore (Schema.make []));
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate relation R") (fun () ->
      ignore (Schema.make [ ("R", 1); ("R", 2) ]));
  let s2 = Schema.make [ ("R", 2); ("T", 3) ] in
  Alcotest.(check int) "union size" 3 (List.length (Schema.relations (Schema.union s s2)));
  Alcotest.check_raises "union conflict" (Invalid_argument "Schema.union: arity conflict on R") (fun () ->
      ignore (Schema.union s (Schema.make [ ("R", 3) ])))

let test_fact () =
  let f = fact "R" [ 1; 2 ] in
  Alcotest.(check string) "print" "R(1, 2)" (Fact.to_string f);
  Alcotest.(check int) "arity" 2 (Fact.arity f);
  let s = Schema.make [ ("R", 2) ] in
  Alcotest.(check bool) "conforms" true (Fact.conforms s f);
  Alcotest.(check bool) "wrong arity" false (Fact.conforms s (fact "R" [ 1 ]));
  Alcotest.(check bool) "unknown rel" false (Fact.conforms s (fact "T" [ 1; 2 ]))

let test_instance_ops () =
  let i = Instance.of_list [ fact "R" [ 1; 2 ]; fact "R" [ 1; 2 ]; fact "S" [ 3 ] ] in
  Alcotest.(check int) "dedup size" 2 (Instance.size i);
  Alcotest.(check int) "adom" 3 (Instance.adom_size i);
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Instance.relations i);
  let j = Instance.add (fact "S" [ 4 ]) i in
  Alcotest.(check bool) "subset" true (Instance.subset i j);
  Alcotest.(check bool) "not subset" false (Instance.subset j i);
  Alcotest.(check int) "union" 3 (Instance.size (Instance.union i j));
  Alcotest.(check int) "inter" 2 (Instance.size (Instance.inter i j));
  Alcotest.(check int) "diff" 1 (Instance.size (Instance.diff j i));
  Alcotest.(check int) "restrict" 1 (Instance.size (Instance.restrict_rel "S" i))

let test_instance_as_key () =
  (* structural equality makes instances usable as distribution points *)
  let i1 = Instance.of_list [ fact "R" [ 1; 2 ]; fact "S" [ 3 ] ] in
  let i2 = Instance.add (fact "S" [ 3 ]) (Instance.of_list [ fact "R" [ 1; 2 ] ]) in
  Alcotest.(check bool) "equal" true (Instance.equal i1 i2);
  Alcotest.(check int) "compare 0" 0 (Instance.compare i1 i2);
  let m = Instance.Map.add i1 1 Instance.Map.empty in
  Alcotest.(check (option int)) "map lookup via i2" (Some 1) (Instance.Map.find_opt i2 m)

let arb_instance =
  QCheck.make ~print:Instance.to_string
    QCheck.Gen.(
      let* facts =
        list_size (0 -- 8)
          (oneof [ map2 (fun a b -> fact "R" [ a; b ]) (0 -- 4) (0 -- 4); map (fun a -> fact "S" [ a ]) (0 -- 4) ])
      in
      return (Instance.of_list facts))

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb f)

let instance_props =
  [ prop "union commutes" (QCheck.pair arb_instance arb_instance) (fun (a, b) ->
        Instance.equal (Instance.union a b) (Instance.union b a));
    prop "inter subset both" (QCheck.pair arb_instance arb_instance) (fun (a, b) ->
        let c = Instance.inter a b in
        Instance.subset c a && Instance.subset c b);
    prop "size of union" (QCheck.pair arb_instance arb_instance) (fun (a, b) ->
        Instance.size (Instance.union a b) = Instance.size a + Instance.size b - Instance.size (Instance.inter a b));
    prop "adom of union" (QCheck.pair arb_instance arb_instance) (fun (a, b) ->
        let u = Instance.adom (Instance.union a b) in
        List.for_all (fun v -> List.exists (Value.equal v) u) (Instance.adom a))
  ]

let () =
  Alcotest.run "relational"
    [ ( "unit",
        [ Alcotest.test_case "value ordering" `Quick test_value_order;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "fact" `Quick test_fact;
          Alcotest.test_case "instance ops" `Quick test_instance_ops;
          Alcotest.test_case "instance as map key" `Quick test_instance_as_key
        ] );
      ("props", instance_props)
    ]
