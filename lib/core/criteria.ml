module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Instance = Ipdb_relational.Instance
module Series = Ipdb_series.Series
module Interval = Ipdb_series.Interval
module Family = Ipdb_pdb.Family
module Ti = Ipdb_pdb.Ti
module Finite_pdb = Ipdb_pdb.Finite_pdb
module View = Ipdb_logic.View
module Hypergraph = Ipdb_hypergraph.Hypergraph

type certificate =
  | Tail of Series.Tail.t
  | Divergence of Series.Divergence.t

type series_verdict =
  | Finite_sum of Interval.t
  | Infinite_sum of { partial : float; at : int }
  | Partial of {
      enclosure : Interval.t option;
      partial : float;
      at : int;
      requested : int;
      exhausted : Ipdb_run.Error.exhaustion;
    }
  | Invalid_certificate of string
  | Check_failed of Ipdb_run.Error.t

module Trace = Ipdb_obs.Trace
module OJson = Ipdb_obs.Json

let verdict_label = function
  | Finite_sum _ -> "finite"
  | Infinite_sum _ -> "infinite"
  | Partial _ -> "partial"
  | Invalid_certificate _ -> "invalid-certificate"
  | Check_failed _ -> "check-failed"

let cert_label = function Tail _ -> "tail" | Divergence _ -> "divergence"

(* Criterion-level span: one per certified series check, annotated with
   the verdict it produced. The engines underneath record their own
   spans, step counts and error events (DESIGN.md §9). *)
let traced_check cert ~verdict_of run =
  if not (Trace.enabled ()) then run ()
  else
    Trace.with_span "criteria.check" ~attrs:[ ("kind", OJson.String (cert_label cert)) ]
      (fun () ->
        let r = run () in
        Trace.annotate [ ("verdict", OJson.String (verdict_label (verdict_of r))) ];
        r)

let check_series ?pool ?budget ~start ~cert ~upto term =
  traced_check cert ~verdict_of:Fun.id @@ fun () ->
  match cert with
  | Tail tail -> (
    match Series.sum_budgeted ?pool ?budget ~start term ~tail ~upto with
    | Ok (Series.Complete enclosure) -> Finite_sum enclosure
    | Ok (Series.Exhausted p) ->
      Partial
        {
          enclosure = p.Series.enclosure;
          partial = Interval.midpoint p.Series.prefix;
          at = p.Series.last;
          requested = p.Series.requested;
          exhausted = p.Series.exhausted;
        }
    | Error (Ipdb_run.Error.Certificate { msg; _ }) -> Invalid_certificate msg
    | Error e -> Check_failed e)
  | Divergence certificate -> (
    match Series.certify_divergence_budgeted ?pool ?budget ~start term ~certificate ~upto with
    | Ok (Series.Div_complete { partial; at }) -> Infinite_sum { partial; at }
    | Ok (Series.Div_exhausted { partial; last; requested; exhausted; _ }) ->
      Partial { enclosure = None; partial; at = last; requested; exhausted }
    | Error (Ipdb_run.Error.Certificate { msg; _ }) -> Invalid_certificate msg
    | Error e -> Check_failed e)

let moment_verdict ?pool ?budget fam ~k ~cert ~upto =
  check_series ?pool ?budget ~start:fam.Family.start ~cert ~upto (Family.moment_term fam ~k)

let theorem53_verdict ?pool ?budget fam ~c ~cert ~upto =
  check_series ?pool ?budget ~start:fam.Family.start ~cert ~upto (Family.theorem53_term fam ~c)

let check_series_resumable ?pool ?budget ?from ?progress ?progress_every ~start ~cert ~upto term =
  traced_check cert ~verdict_of:fst @@ fun () ->
  match cert with
  | Tail tail -> (
    match Series.sum_resumable ?pool ?budget ?from ?progress ?progress_every ~start term ~tail ~upto with
    | Ok (Series.Complete enclosure, snap) -> (Finite_sum enclosure, Some snap)
    | Ok (Series.Exhausted p, snap) ->
      ( Partial
          {
            enclosure = p.Series.enclosure;
            partial = Interval.midpoint p.Series.prefix;
            at = p.Series.last;
            requested = p.Series.requested;
            exhausted = p.Series.exhausted;
          },
        Some snap )
    | Error (Ipdb_run.Error.Certificate { msg; _ }) -> (Invalid_certificate msg, None)
    | Error e -> (Check_failed e, None))
  | Divergence certificate -> (
    match
      Series.certify_divergence_resumable ?pool ?budget ?from ?progress ?progress_every ~start term
        ~certificate ~upto
    with
    | Ok (Series.Div_complete { partial; at }, snap) -> (Infinite_sum { partial; at }, Some snap)
    | Ok (Series.Div_exhausted { partial; last; requested; exhausted; _ }, snap) ->
      (Partial { enclosure = None; partial; at = last; requested; exhausted }, Some snap)
    | Error (Ipdb_run.Error.Certificate { msg; _ }) -> (Invalid_certificate msg, None)
    | Error e -> (Check_failed e, None))

let moment_verdict_resumable ?pool ?budget ?from ?progress ?progress_every fam ~k ~cert ~upto =
  check_series_resumable ?pool ?budget ?from ?progress ?progress_every ~start:fam.Family.start ~cert
    ~upto (Family.moment_term fam ~k)

let theorem53_verdict_resumable ?pool ?budget ?from ?progress ?progress_every fam ~c ~cert ~upto =
  check_series_resumable ?pool ?budget ?from ?progress ?progress_every ~start:fam.Family.start ~cert
    ~upto (Family.theorem53_term fam ~c)

(* ------------------------------------------------------------------ *)
(* Verdict (de)serialization — evidence persisted in checkpoints        *)
(* ------------------------------------------------------------------ *)

(* Space-free token encoding for embedded strings, so a serialized verdict
   is a single line that splits cleanly on spaces. The empty string gets a
   dedicated spelling (["\e"]) that no nonempty escape can collide with. *)
let tok_escape s =
  if s = "" then "\\e"
  else begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | ' ' -> Buffer.add_string b "\\s"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let tok_unescape s =
  if s = "\\e" then Ok ""
  else begin
    let n = String.length s in
    let b = Buffer.create n in
    let rec go i =
      if i >= n then Ok (Buffer.contents b)
      else
        match s.[i] with
        | '\\' ->
          if i + 1 >= n then Error "dangling escape in token"
          else (
            match s.[i + 1] with
            | '\\' -> Buffer.add_char b '\\'; go (i + 2)
            | 's' -> Buffer.add_char b ' '; go (i + 2)
            | 'n' -> Buffer.add_char b '\n'; go (i + 2)
            | 'r' -> Buffer.add_char b '\r'; go (i + 2)
            | c -> Error (Printf.sprintf "invalid token escape '\\%c'" c))
        | c -> Buffer.add_char b c; go (i + 1)
    in
    go 0
  end

let enc_f = Series.Snapshot.encode_float
let dec_f = Series.Snapshot.decode_float
let ( let* ) = Result.bind

let exhaustion_to_tokens = function
  | Ipdb_run.Error.Timeout { elapsed; limit } -> [ "timeout"; enc_f elapsed; enc_f limit ]
  | Ipdb_run.Error.Steps { used; limit } -> [ "steps"; string_of_int used; string_of_int limit ]
  | Ipdb_run.Error.Cancelled -> [ "cancelled" ]

let int_tok name s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "unparsable %s %S" name s)

let exhaustion_of_tokens = function
  | [ "timeout"; e; l ] ->
    let* elapsed = dec_f e in
    let* limit = dec_f l in
    Ok (Ipdb_run.Error.Timeout { elapsed; limit })
  | [ "steps"; u; l ] ->
    let* used = int_tok "step count" u in
    let* limit = int_tok "step limit" l in
    Ok (Ipdb_run.Error.Steps { used; limit })
  | [ "cancelled" ] -> Ok Ipdb_run.Error.Cancelled
  | toks -> Error (Printf.sprintf "unparsable exhaustion %S" (String.concat " " toks))

let error_to_tokens = function
  | Ipdb_run.Error.Parse { what; msg } -> [ "parse"; tok_escape what; tok_escape msg ]
  | Ipdb_run.Error.Validation { what; msg } -> [ "validation"; tok_escape what; tok_escape msg ]
  | Ipdb_run.Error.Certificate { what; msg } -> [ "certificate"; tok_escape what; tok_escape msg ]
  | Ipdb_run.Error.Io { path; msg } -> [ "io"; tok_escape path; tok_escape msg ]
  | Ipdb_run.Error.Locked { path; msg } -> [ "locked"; tok_escape path; tok_escape msg ]
  | Ipdb_run.Error.Fenced { what; stale; current } ->
    [ "fenced"; tok_escape what; string_of_int stale; string_of_int current ]
  | Ipdb_run.Error.Exhausted { what; reason } ->
    "exhausted" :: tok_escape what :: exhaustion_to_tokens reason
  | Ipdb_run.Error.Injected_fault { site } -> [ "fault"; tok_escape site ]
  | Ipdb_run.Error.Internal { msg } -> [ "internal"; tok_escape msg ]

let error_of_tokens toks =
  let two k what msg =
    let* what = tok_unescape what in
    let* msg = tok_unescape msg in
    Ok (k ~what ~msg)
  in
  match toks with
  | [ "parse"; w; m ] -> two (fun ~what ~msg -> Ipdb_run.Error.Parse { what; msg }) w m
  | [ "validation"; w; m ] -> two (fun ~what ~msg -> Ipdb_run.Error.Validation { what; msg }) w m
  | [ "certificate"; w; m ] -> two (fun ~what ~msg -> Ipdb_run.Error.Certificate { what; msg }) w m
  | [ "io"; p; m ] -> two (fun ~what ~msg -> Ipdb_run.Error.Io { path = what; msg }) p m
  | [ "locked"; p; m ] -> two (fun ~what ~msg -> Ipdb_run.Error.Locked { path = what; msg }) p m
  | [ "fenced"; w; s; c ] ->
    let* what = tok_unescape w in
    let* stale = int_tok "stale epoch" s in
    let* current = int_tok "current epoch" c in
    Ok (Ipdb_run.Error.Fenced { what; stale; current })
  | "exhausted" :: w :: rest ->
    let* what = tok_unescape w in
    let* reason = exhaustion_of_tokens rest in
    Ok (Ipdb_run.Error.Exhausted { what; reason })
  | [ "fault"; s ] ->
    let* site = tok_unescape s in
    Ok (Ipdb_run.Error.Injected_fault { site })
  | [ "internal"; m ] ->
    let* msg = tok_unescape m in
    Ok (Ipdb_run.Error.Internal { msg })
  | toks -> Error (Printf.sprintf "unparsable error %S" (String.concat " " toks))

let verdict_serialize v =
  let tokens =
    match v with
    | Finite_sum e -> [ "finite"; enc_f (Interval.lo e); enc_f (Interval.hi e) ]
    | Infinite_sum { partial; at } -> [ "infinite"; enc_f partial; string_of_int at ]
    | Partial { enclosure; partial; at; requested; exhausted } ->
      let enc =
        match enclosure with
        | None -> [ "none" ]
        | Some e -> [ "some"; enc_f (Interval.lo e); enc_f (Interval.hi e) ]
      in
      ("partial" :: enc)
      @ [ enc_f partial; string_of_int at; string_of_int requested ]
      @ exhaustion_to_tokens exhausted
    | Invalid_certificate msg -> [ "invalid"; tok_escape msg ]
    | Check_failed e -> "failed" :: error_to_tokens e
  in
  String.concat " " tokens

let interval_of lo_s hi_s =
  let* lo = dec_f lo_s in
  let* hi = dec_f hi_s in
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    Error "endpoints do not form an interval"
  else Ok (Interval.make lo hi)

let verdict_deserialize s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "finite"; lo_s; hi_s ] ->
    let* e = interval_of lo_s hi_s in
    Ok (Finite_sum e)
  | [ "infinite"; p_s; at_s ] ->
    let* partial = dec_f p_s in
    let* at = int_tok "index" at_s in
    Ok (Infinite_sum { partial; at })
  | "partial" :: rest -> (
    let finish enclosure rest =
      match rest with
      | p_s :: at_s :: req_s :: exh ->
        let* partial = dec_f p_s in
        let* at = int_tok "index" at_s in
        let* requested = int_tok "requested index" req_s in
        let* exhausted = exhaustion_of_tokens exh in
        Ok (Partial { enclosure; partial; at; requested; exhausted })
      | _ -> Error "truncated partial verdict"
    in
    match rest with
    | "none" :: rest -> finish None rest
    | "some" :: lo_s :: hi_s :: rest ->
      let* e = interval_of lo_s hi_s in
      finish (Some e) rest
    | _ -> Error "unparsable partial enclosure")
  | [ "invalid"; m ] ->
    let* msg = tok_unescape m in
    Ok (Invalid_certificate msg)
  | "failed" :: rest ->
    let* e = error_of_tokens rest in
    Ok (Check_failed e)
  | tag :: _ -> Error (Printf.sprintf "unknown verdict tag %S" tag)
  | [] -> Error "empty verdict"

let verdict_to_string = function
  | Finite_sum e -> Printf.sprintf "finite: sum in [%g, %g]" (Interval.lo e) (Interval.hi e)
  | Infinite_sum { partial; at } -> Printf.sprintf "infinite (certified; partial %g after %d terms)" partial at
  | Partial { enclosure; partial; at; requested; exhausted } ->
    let enc =
      match enclosure with
      | Some e -> Printf.sprintf "; certified enclosure so far [%g, %g]" (Interval.lo e) (Interval.hi e)
      | None -> ""
    in
    Printf.sprintf "partial: %s after %d of %d terms (partial sum %g%s)"
      (Ipdb_run.Error.exhaustion_to_string exhausted)
      at requested partial enc
  | Invalid_certificate msg -> "certificate failed: " ^ msg
  | Check_failed e -> Ipdb_run.Error.to_string e

(* ------------------------------------------------------------------ *)
(* Lemma 3.3                                                           *)
(* ------------------------------------------------------------------ *)

let binomial n k =
  if k < 0 || k > n then Q.zero
  else begin
    let rec go acc i =
      if i > k then acc else go (Q.div (Q.mul acc (Q.of_int (n - i + 1))) (Q.of_int i)) (i + 1)
    in
    go Q.one 1
  end

let lemma33_bound ~view ~input_schema ~input_moment ~k =
  let m = List.length (View.defs view) in
  let r =
    List.fold_left (fun acc (d : View.def) -> Stdlib.max acc (List.length d.View.head)) 0 (View.defs view)
  in
  let c = View.max_constants_in_def view in
  let r' = Schema.max_arity input_schema in
  let rk = r * k in
  (* Batched-GCD accumulation: the committed sum is identical to the
     eager [Q.add] fold, just cheaper on the long common-denominator
     chains these binomial series produce. *)
  let total = Q.Accum.create () in
  for j = 0 to rk do
    (* C(rk, j) r'^j c^(rk-j) E(|·|^j); with c = 0 only the j = rk term
       survives (0^0 = 1 by the binomial-formula convention) *)
    let const_pow = if rk - j = 0 then Q.one else Q.pow (Q.of_int c) (rk - j) in
    Q.Accum.add total
      (Q.mul (binomial rk j) (Q.mul (Q.pow (Q.of_int r') j) (Q.mul const_pow (input_moment j))))
  done;
  Q.mul (Q.pow (Q.of_int m) k) (Q.Accum.total total)

(* ------------------------------------------------------------------ *)
(* Lemma 3.6                                                           *)
(* ------------------------------------------------------------------ *)

type lemma36_data = {
  vn_size : int;
  r : int;
  en_mass : Q.t;
  bound : float;
  exact_lhs : Q.t option;
}

let marginal_of ti =
  let assoc = Ti.Finite.facts ti in
  fun fact -> match List.assoc_opt fact assoc with Some p -> p | None -> Q.zero

let lemma36_bound ~ti ~view ~world =
  let r = Stdlib.max 1 (Schema.max_arity (Ti.Finite.schema ti)) in
  let view_constants = View.constants view in
  let vn =
    List.filter (fun v -> not (List.exists (Value.equal v) view_constants)) (Instance.adom world)
  in
  let vn_size = List.length vn in
  let en =
    List.filter
      (fun (fact, _) -> List.exists (fun v -> List.exists (Value.equal v) vn) (Ipdb_relational.Fact.values fact))
      (Ti.Finite.facts ti)
  in
  let en_mass = Q.sum (List.map snd en) in
  let bound =
    if vn_size = 0 then 1.0
    else begin
      let vnf = float_of_int vn_size and rf = float_of_int r in
      vnf *. ((rf *. rf *. (vnf ** (rf -. 1.0)) *. Q.to_float en_mass) ** (vnf /. rf))
    end
  in
  let exact_lhs =
    let uncertain = List.length (Ti.Finite.uncertain_facts ti) in
    if uncertain > Ipdb_pdb.Worlds.max_uncertain then None
    else begin
      let expanded = Ti.Finite.to_finite_pdb ti in
      let image = Finite_pdb.map_view view expanded in
      Some (Finite_pdb.prob image world)
    end
  in
  { vn_size; r; en_mass; bound; exact_lhs }

let minimal_cover_sum ~ti ~target =
  let facts = List.map fst (Ti.Finite.facts ti) in
  let h = Hypergraph.of_facts facts in
  let target_set = Hypergraph.VSet.of_list target in
  let marginal = marginal_of ti in
  let covers = Hypergraph.minimal_edge_covers h ~target:target_set in
  Q.sum
    (List.map
       (fun cover ->
         Q.prod
           (List.map
              (fun (e : Hypergraph.edge) ->
                match e.Hypergraph.label with Some f -> marginal f | None -> Q.zero)
              cover))
       covers)

(* ------------------------------------------------------------------ *)
(* Lemma 3.7                                                           *)
(* ------------------------------------------------------------------ *)

let lemma37_rhs ~r ~a_n ~d_n =
  let d = float_of_int d_n and rf = float_of_int r in
  d *. ((a_n *. (d ** (rf -. 1.0))) ** (d /. rf))

let lemma37_refutation ~prob ~adom_size ~a ~rs ~range =
  let lo, hi = range in
  List.map
    (fun r ->
      let violations = ref 0 in
      for n = lo to hi do
        let d_n = adom_size n in
        if d_n > 0 && prob n >= lemma37_rhs ~r ~a_n:(a n) ~d_n then incr violations
      done;
      (r, !violations))
    rs
