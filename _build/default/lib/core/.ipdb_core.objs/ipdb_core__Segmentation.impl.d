lib/core/segmentation.ml: Ipdb_bignum Ipdb_logic Ipdb_pdb Ipdb_relational List Printf Stdlib
