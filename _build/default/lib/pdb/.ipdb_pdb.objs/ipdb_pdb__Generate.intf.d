lib/pdb/generate.mli: Bid Finite_pdb Ipdb_bignum Ipdb_logic Ipdb_relational Random Ti
