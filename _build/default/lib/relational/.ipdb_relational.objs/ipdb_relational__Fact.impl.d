lib/relational/fact.ml: Format Hashtbl List Schema String Value
