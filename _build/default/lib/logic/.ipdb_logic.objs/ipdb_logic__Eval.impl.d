lib/logic/eval.ml: Fo Ipdb_relational List Map Set String
