module Value = Ipdb_relational.Value

type var = string

type term =
  | V of var
  | C of Value.t

type t =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists of var * t
  | Forall of var * t

let v x = V x
let c value = C value
let ci n = C (Value.Int n)
let cs s = C (Value.Str s)
let atom r args = Atom (r, args)
let eq a b = Eq (a, b)
let neq a b = Not (Eq (a, b))

let conj fs =
  let fs = List.filter (fun f -> f <> True) fs in
  if List.exists (fun f -> f = False) fs then False
  else match fs with [] -> True | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj fs =
  let fs = List.filter (fun f -> f <> False) fs in
  if List.exists (fun f -> f = True) fs then True
  else match fs with [] -> False | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let exists_many xs f = List.fold_right (fun x acc -> Exists (x, acc)) xs f
let forall_many xs f = List.fold_right (fun x acc -> Forall (x, acc)) xs f

let eq_tuple ts us =
  if List.length ts <> List.length us then invalid_arg "Fo.eq_tuple: length mismatch";
  conj (List.map2 eq ts us)

module VarSet = Set.Make (String)

let rec fv = function
  | True | False -> VarSet.empty
  | Atom (_, args) ->
    List.fold_left (fun acc t -> match t with V x -> VarSet.add x acc | C _ -> acc) VarSet.empty args
  | Eq (a, b) ->
    let add acc t = match t with V x -> VarSet.add x acc | C _ -> acc in
    add (add VarSet.empty a) b
  | Not f -> fv f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> VarSet.union (fv f) (fv g)
  | Exists (x, f) | Forall (x, f) -> VarSet.remove x (fv f)

let free_vars f = VarSet.elements (fv f)
let is_sentence f = VarSet.is_empty (fv f)

let rec all_vars = function
  | True | False -> VarSet.empty
  | Atom (_, args) ->
    List.fold_left (fun acc t -> match t with V x -> VarSet.add x acc | C _ -> acc) VarSet.empty args
  | Eq (a, b) ->
    let add acc t = match t with V x -> VarSet.add x acc | C _ -> acc in
    add (add VarSet.empty a) b
  | Not f -> all_vars f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> VarSet.union (all_vars f) (all_vars g)
  | Exists (x, f) | Forall (x, f) -> VarSet.add x (all_vars f)

module ValueSet = Set.Make (Value)

let constants f =
  let rec go = function
    | True | False -> ValueSet.empty
    | Atom (_, args) ->
      List.fold_left (fun acc t -> match t with C v -> ValueSet.add v acc | V _ -> acc) ValueSet.empty args
    | Eq (a, b) ->
      let add acc t = match t with C v -> ValueSet.add v acc | V _ -> acc in
      add (add ValueSet.empty a) b
    | Not f -> go f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> ValueSet.union (go f) (go g)
    | Exists (_, f) | Forall (_, f) -> go f
  in
  ValueSet.elements (go f)

module RelMap = Map.Make (String)

let relations f =
  let rec go acc = function
    | True | False | Eq _ -> acc
    | Atom (r, args) -> RelMap.add r (List.length args) acc
    | Not f -> go acc f
    | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> go (go acc f) g
    | Exists (_, f) | Forall (_, f) -> go acc f
  in
  RelMap.bindings (go RelMap.empty f)

let fresh_var stem fs =
  let used = List.fold_left (fun acc f -> VarSet.union acc (all_vars f)) VarSet.empty fs in
  if not (VarSet.mem stem used) then stem
  else begin
    let rec go i =
      let cand = Printf.sprintf "%s_%d" stem i in
      if VarSet.mem cand used then go (i + 1) else cand
    in
    go 0
  end

let subst_term x t = function
  | V y when String.equal x y -> t
  | other -> other

let rec substitute x t f =
  match f with
  | True | False -> f
  | Atom (r, args) -> Atom (r, List.map (subst_term x t) args)
  | Eq (a, b) -> Eq (subst_term x t a, subst_term x t b)
  | Not g -> Not (substitute x t g)
  | And (g, h) -> And (substitute x t g, substitute x t h)
  | Or (g, h) -> Or (substitute x t g, substitute x t h)
  | Implies (g, h) -> Implies (substitute x t g, substitute x t h)
  | Iff (g, h) -> Iff (substitute x t g, substitute x t h)
  | Exists (y, g) ->
    if String.equal x y then f
    else begin
      match t with
      | V z when String.equal z y ->
        (* capture: rename the binder first *)
        let y' = fresh_var y [ g; Atom ("", [ t ]) ] in
        Exists (y', substitute x t (substitute y (V y') g))
      | _ -> Exists (y, substitute x t g)
    end
  | Forall (y, g) ->
    if String.equal x y then f
    else begin
      match t with
      | V z when String.equal z y ->
        let y' = fresh_var y [ g; Atom ("", [ t ]) ] in
        Forall (y', substitute x t (substitute y (V y') g))
      | _ -> Forall (y, substitute x t g)
    end

let rename_free x y f = substitute x (V y) f

let at_most_one x phi =
  (* ∀x ∀x' (phi(x) ∧ phi(x') → x = x') *)
  let x' = fresh_var (x ^ "'") [ phi ] in
  let phi' = substitute x (V x') phi in
  Forall (x, Forall (x', Implies (And (phi, phi'), Eq (V x, V x'))))

let exactly_one x phi = And (Exists (x, phi), at_most_one x phi)

let rec size = function
  | True | False -> 1
  | Atom _ | Eq _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) | Implies (f, g) | Iff (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let equal (a : t) (b : t) = a = b

let term_to_string = function
  | V x -> x
  | C value -> Value.to_string value

let rec to_string = function
  | True -> "⊤"
  | False -> "⊥f"
  | Atom (r, args) -> r ^ "(" ^ String.concat "," (List.map term_to_string args) ^ ")"
  | Eq (a, b) -> term_to_string a ^ "=" ^ term_to_string b
  | Not f -> "¬" ^ paren f
  | And (f, g) -> paren f ^ " ∧ " ^ paren g
  | Or (f, g) -> paren f ^ " ∨ " ^ paren g
  | Implies (f, g) -> paren f ^ " → " ^ paren g
  | Iff (f, g) -> paren f ^ " ↔ " ^ paren g
  | Exists (x, f) -> "∃" ^ x ^ "." ^ paren f
  | Forall (x, f) -> "∀" ^ x ^ "." ^ paren f

and paren f =
  match f with
  | True | False | Atom _ | Eq _ | Not _ -> to_string f
  | _ -> "(" ^ to_string f ^ ")"

let pp fmt f = Format.pp_print_string fmt (to_string f)
