test/test_randomized.ml: Alcotest Ipdb_bignum Ipdb_core Ipdb_logic Ipdb_pdb Ipdb_relational QCheck QCheck_alcotest
