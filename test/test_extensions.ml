(* Tests for the extension modules: view composition (Remark 4.2's
   FO(FO(TI)) = FO(TI) observation), Monte-Carlo estimation, and lifted
   probabilistic query evaluation on TI-PDBs. *)

module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module View = Ipdb_logic.View
module Interval = Ipdb_series.Interval
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Ti = Ipdb_pdb.Ti
module Estimate = Ipdb_pdb.Estimate
module Pqe = Ipdb_pdb.Pqe
module Zoo = Ipdb_core.Zoo

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)
let inst facts = Instance.of_list facts
let q = Alcotest.testable Q.pp Q.equal

let estimate_exn = function
  | Ok e -> e
  | Error err -> Alcotest.fail (Ipdb_run.Error.to_string err)

(* ------------------------------------------------------------------ *)
(* View composition                                                    *)
(* ------------------------------------------------------------------ *)

let test_compose_basic () =
  (* inner: T(x) := ∃y R(x,y);  outer: U(x) := T(x) ∧ ¬T'(x)? keep simple:
     outer: U(x) := ∃z T(z) ∧ T(x) *)
  let inner = View.make [ ("T", [ "x" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])) ] in
  let outer = View.make [ ("U", [ "x" ], Fo.And (Fo.atom "T" [ Fo.v "x" ], Fo.Exists ("z", Fo.atom "T" [ Fo.v "z" ]))) ] in
  let composed = View.compose outer inner in
  let i = inst [ fact "R" [ 1; 2 ]; fact "R" [ 3; 1 ] ] in
  Alcotest.(check bool) "compose = apply twice" true
    (Instance.equal (View.apply composed i) (View.apply outer (View.apply inner i)))

let test_compose_capture () =
  (* binder names collide on purpose: inner uses x as a bound variable *)
  let inner = View.make [ ("T", [ "w" ], Fo.Exists ("x", Fo.atom "R" [ Fo.v "x"; Fo.v "w" ])) ] in
  let outer = View.make [ ("U", [ "x" ], Fo.atom "T" [ Fo.v "x" ]) ] in
  let composed = View.compose outer inner in
  let i = inst [ fact "R" [ 5; 9 ] ] in
  Alcotest.(check bool) "capture avoided" true
    (Instance.equal (View.apply composed i) (View.apply outer (View.apply inner i)));
  Alcotest.(check bool) "9 in output" true (Instance.mem (Fact.make "U" [ vi 9 ]) (View.apply composed i))

let test_compose_pushforward () =
  (* on a PDB: pushforward along the composite = pushforward twice — the
     FO(FO(TI)) = FO(TI) law at the distribution level *)
  let ti = Ti.Finite.make (Schema.make [ ("R", 2) ])
      [ (fact "R" [ 1; 2 ], Q.half); (fact "R" [ 2; 1 ], Q.of_ints 1 3) ]
  in
  let inner = View.make [ ("T", [ "x" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])) ] in
  let outer = View.make [ ("U", [], Fo.Exists ("x", Fo.atom "T" [ Fo.v "x" ])) ] in
  let d = Ti.Finite.to_finite_pdb ti in
  let two_step = Finite_pdb.map_view outer (Finite_pdb.map_view inner d) in
  let one_step = Finite_pdb.map_view (View.compose outer inner) d in
  Alcotest.(check bool) "distributions equal" true (Finite_pdb.equal two_step one_step)

let test_compose_missing_relation () =
  let inner = View.make [ ("T", [ "x" ], Fo.atom "R" [ Fo.v "x" ]) ] in
  let outer = View.make [ ("U", [ "x" ], Fo.atom "S" [ Fo.v "x" ]) ] in
  Alcotest.check_raises "missing relation"
    (Invalid_argument "View.compose: relation S not defined by the inner view") (fun () ->
      ignore (View.compose outer inner))

(* ------------------------------------------------------------------ *)
(* Monte-Carlo estimation                                              *)
(* ------------------------------------------------------------------ *)

let test_estimate_finite () =
  let d =
    Finite_pdb.make (Schema.make [ ("R", 1) ])
      [ (inst [], Q.of_ints 1 4); (inst [ fact "R" [ 1 ] ], Q.of_ints 3 4) ]
  in
  let rng = Random.State.make [| 5 |] in
  let e =
    estimate_exn
      (Estimate.event_probability_finite ~samples:20000 ~rng d (fun i ->
           Instance.mem (fact "R" [ 1 ]) i))
  in
  Alcotest.(check bool) "interval contains truth" true (Interval.contains (Estimate.interval e) 0.75);
  Alcotest.(check bool) "tight-ish" true (e.Estimate.statistical_halfwidth < 0.03)

let test_estimate_ti_infinite () =
  (* P(R(1) present) = 1/2 in the geometric TI-PDB *)
  let ti =
    Ti.Infinite.make ~name:"geo" ~schema:(Schema.make [ ("R", 1) ])
      ~fact:(fun i -> fact "R" [ i ])
      ~marginal:(fun i -> Float.ldexp 1.0 (-i))
      ~start:1
      ~tail:(Ipdb_series.Series.Tail.Geometric { index = 1; first = 0.5; ratio = 0.5 })
      ()
  in
  let rng = Random.State.make [| 6 |] in
  let e =
    estimate_exn
      (Estimate.event_probability_ti ~samples:20000 ~truncate_at:30 ~rng ti (fun i ->
           Instance.mem (fact "R" [ 1 ]) i))
  in
  Alcotest.(check bool) "bias is the certified tail" true (e.Estimate.truncation_bias < 1e-8);
  Alcotest.(check bool) "contains 1/2" true (Interval.contains (Estimate.interval e) 0.5)

let test_estimate_bid_sentence () =
  (* P(DE count >= 1) = 1 - e^{-2.3} ≈ 0.8997 *)
  let rng = Random.State.make [| 7 |] in
  let phi =
    Fo.Exists ("n", Fo.And (Fo.atom "Accidents" [ Fo.cs "DE"; Fo.v "n" ], Fo.Not (Fo.Eq (Fo.v "n", Fo.ci 0))))
  in
  let e = estimate_exn (Estimate.sentence_probability_bid ~samples:8000 ~rng Zoo.car_accidents phi) in
  Alcotest.(check bool) "contains 1 - e^-2.3" true
    (Interval.contains (Estimate.interval e) (1.0 -. exp (-2.3)))

let test_hoeffding () =
  let hw ~samples ~delta =
    match Estimate.hoeffding_halfwidth ~samples ~delta with
    | Ok h -> h
    | Error e -> Alcotest.fail (Ipdb_run.Error.to_string e)
  in
  Alcotest.(check bool) "halfwidth shrinks" true
    (hw ~samples:10000 ~delta:0.01 < hw ~samples:100 ~delta:0.01);
  let is_validation what = function
    | Error (Ipdb_run.Error.Validation { what = w; _ }) -> w = what
    | _ -> false
  in
  Alcotest.(check bool) "bad delta is typed" true
    (is_validation "delta" (Estimate.hoeffding_halfwidth ~samples:10 ~delta:0.0));
  Alcotest.(check bool) "NaN delta is typed" true
    (is_validation "delta" (Estimate.hoeffding_halfwidth ~samples:10 ~delta:Float.nan));
  Alcotest.(check bool) "bad samples is typed" true
    (is_validation "samples" (Estimate.hoeffding_halfwidth ~samples:0 ~delta:0.01));
  let rng = Random.State.make [| 11 |] in
  let d =
    Finite_pdb.make (Schema.make [ ("R", 1) ]) [ (inst [ fact "R" [ 1 ] ], Q.one) ]
  in
  Alcotest.(check bool) "estimator rejects bad samples" true
    (is_validation "samples"
       (Estimate.event_probability_finite ~samples:(-3) ~rng d (fun _ -> true)))

(* ------------------------------------------------------------------ *)
(* PQE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_cq_recognition () =
  let phi = Fo.exists_many [ "x"; "y" ] (Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "S" [ Fo.v "y" ])) in
  (match Pqe.cq_of_formula phi with
  | Some cq ->
    Alcotest.(check int) "two atoms" 2 (List.length cq.Pqe.atoms);
    Alcotest.(check bool) "sjf" true (Pqe.is_self_join_free cq);
    Alcotest.(check bool) "hierarchical" true (Pqe.is_hierarchical cq)
  | None -> Alcotest.fail "should parse");
  Alcotest.(check bool) "negation rejected" true
    (Pqe.cq_of_formula (Fo.Exists ("x", Fo.Not (Fo.atom "R" [ Fo.v "x" ]))) = None);
  Alcotest.(check bool) "free variable rejected" true
    (Pqe.cq_of_formula (Fo.atom "R" [ Fo.v "x" ]) = None)

let test_hierarchical_detection () =
  (* the hard query H0: R(x), S(x,y), T(y) is NOT hierarchical *)
  let h0 =
    Fo.exists_many [ "x"; "y" ]
      (Fo.conj [ Fo.atom "R" [ Fo.v "x" ]; Fo.atom "S" [ Fo.v "x"; Fo.v "y" ]; Fo.atom "T" [ Fo.v "y" ] ])
  in
  match Pqe.cq_of_formula h0 with
  | Some cq ->
    Alcotest.(check bool) "H0 not hierarchical" false (Pqe.is_hierarchical cq);
    (* and the lifted plan refuses it *)
    let ti =
      Ti.Finite.make
        (Schema.make [ ("R", 1); ("S", 2); ("T", 1) ])
        [ (fact "R" [ 1 ], Q.half); (fact "S" [ 1; 2 ], Q.half); (fact "T" [ 2 ], Q.half) ]
    in
    Alcotest.(check bool) "lifted refuses H0" true (Pqe.lifted_cq_probability ti cq = None)
  | None -> Alcotest.fail "H0 should parse"

let test_lifted_simple () =
  (* q = ∃x R(x): P = 1 - (1-p1)(1-p2) *)
  let ti = Ti.Finite.make (Schema.make [ ("R", 1) ]) [ (fact "R" [ 1 ], Q.of_ints 1 3); (fact "R" [ 2 ], Q.of_ints 1 4) ] in
  let cq = Option.get (Pqe.cq_of_formula (Fo.Exists ("x", Fo.atom "R" [ Fo.v "x" ]))) in
  match Pqe.lifted_cq_probability ti cq with
  | Some p ->
    Alcotest.(check q) "1-(2/3)(3/4)" Q.half p;
    Alcotest.(check q) "agrees with enumeration" (Pqe.boolean_probability_exact ti (Pqe.cq_to_formula cq)) p
  | None -> Alcotest.fail "safe query refused"

let test_lifted_join () =
  (* hierarchical join: ∃x∃y R(x,y) ∧ S(x) — atoms of y ⊆ atoms of x *)
  let ti =
    Ti.Finite.make
      (Schema.make [ ("R", 2); ("S", 1) ])
      [ (fact "R" [ 1; 2 ], Q.half);
        (fact "R" [ 1; 3 ], Q.of_ints 1 3);
        (fact "R" [ 2; 3 ], Q.of_ints 1 4);
        (fact "S" [ 1 ], Q.of_ints 2 3);
        (fact "S" [ 2 ], Q.of_ints 1 5)
      ]
  in
  let cq =
    Option.get
      (Pqe.cq_of_formula
         (Fo.exists_many [ "x"; "y" ] (Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "S" [ Fo.v "x" ]))))
  in
  Alcotest.(check bool) "hierarchical" true (Pqe.is_hierarchical cq);
  match Pqe.lifted_cq_probability ti cq with
  | Some p ->
    Alcotest.(check q) "lifted = enumeration" (Pqe.boolean_probability_exact ti (Pqe.cq_to_formula cq)) p
  | None -> Alcotest.fail "hierarchical query refused"

let test_lifted_ground_and_constants () =
  let ti =
    Ti.Finite.make (Schema.make [ ("R", 2); ("S", 1) ])
      [ (fact "R" [ 1; 2 ], Q.half); (fact "S" [ 7 ], Q.of_ints 1 3) ]
  in
  (* ground conjunction *)
  let cq = Option.get (Pqe.cq_of_formula (Fo.And (Fo.atom "R" [ Fo.ci 1; Fo.ci 2 ], Fo.atom "S" [ Fo.ci 7 ]))) in
  (match Pqe.lifted_cq_probability ti cq with
  | Some p -> Alcotest.(check q) "product of marginals" (Q.of_ints 1 6) p
  | None -> Alcotest.fail "ground query refused");
  (* constant inside a quantified atom *)
  let cq2 = Option.get (Pqe.cq_of_formula (Fo.Exists ("y", Fo.atom "R" [ Fo.ci 1; Fo.v "y" ]))) in
  match Pqe.lifted_cq_probability ti cq2 with
  | Some p -> Alcotest.(check q) "constant arg" Q.half p
  | None -> Alcotest.fail "refused"

(* Random hierarchical queries vs enumeration. *)
let arb_ti_and_query =
  QCheck.make
    ~print:(fun (ti, phi) -> Format.asprintf "%a |= %s" Ti.Finite.pp ti (Fo.to_string phi))
    QCheck.Gen.(
      let* n_r = 1 -- 3 in
      let* n_s = 1 -- 3 in
      let* r_facts =
        list_size (return n_r)
          (let* a = 0 -- 2 in
           let* b = 0 -- 2 in
           let* den = 2 -- 6 in
           return (fact "R" [ a; b ], Q.of_ints 1 den))
      in
      let* s_facts =
        list_size (return n_s)
          (let* a = 0 -- 2 in
           let* den = 2 -- 6 in
           return (fact "S" [ a ], Q.of_ints 1 den))
      in
      let dedup facts =
        List.fold_left (fun acc (f, p) -> if List.mem_assoc f acc then acc else (f, p) :: acc) [] facts
      in
      let ti = Ti.Finite.make (Schema.make [ ("R", 2); ("S", 1) ]) (dedup (r_facts @ s_facts)) in
      let* shape = 0 -- 2 in
      let phi =
        match shape with
        | 0 -> Fo.exists_many [ "x"; "y" ] (Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "S" [ Fo.v "x" ]))
        | 1 -> Fo.Exists ("x", Fo.atom "S" [ Fo.v "x" ])
        | _ -> Fo.exists_many [ "x"; "y" ] (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])
      in
      return (ti, phi))

let lifted_vs_enumeration =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"lifted PQE = enumeration on hierarchical queries" arb_ti_and_query
       (fun (ti, phi) ->
         let cq = Option.get (Pqe.cq_of_formula phi) in
         match Pqe.lifted_cq_probability ti cq with
         | Some p -> Q.equal p (Pqe.boolean_probability_exact ti phi)
         | None -> false))

let () =
  Alcotest.run "extensions"
    [ ( "view-compose",
        [ Alcotest.test_case "basic" `Quick test_compose_basic;
          Alcotest.test_case "capture avoidance" `Quick test_compose_capture;
          Alcotest.test_case "pushforward law" `Quick test_compose_pushforward;
          Alcotest.test_case "missing relation" `Quick test_compose_missing_relation
        ] );
      ( "estimate",
        [ Alcotest.test_case "finite PDB" `Quick test_estimate_finite;
          Alcotest.test_case "infinite TI" `Quick test_estimate_ti_infinite;
          Alcotest.test_case "BID sentence" `Quick test_estimate_bid_sentence;
          Alcotest.test_case "hoeffding" `Quick test_hoeffding
        ] );
      ( "pqe",
        [ Alcotest.test_case "CQ recognition" `Quick test_cq_recognition;
          Alcotest.test_case "hierarchical detection (H0)" `Quick test_hierarchical_detection;
          Alcotest.test_case "single atom" `Quick test_lifted_simple;
          Alcotest.test_case "hierarchical join" `Quick test_lifted_join;
          Alcotest.test_case "ground + constants" `Quick test_lifted_ground_and_constants;
          lifted_vs_enumeration
        ] )
    ]
