(** Arbitrary-precision rational numbers.

    Values are kept in lowest terms with a positive denominator, so
    structural equality coincides with numeric equality. These are the exact
    probabilities used throughout the library: the paper's constructions
    (Theorems 4.1 and 5.9, Corollary 5.4, the finite completeness theorem)
    are verified as {e equalities} of distributions in this type. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction and destruction} *)

val make : Zint.t -> Zint.t -> t
(** [make num den] is the normalised fraction [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero when [b = 0]. *)

val of_zint : Zint.t -> t
val of_nat : Nat.t -> t

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal notation ["1.25"], with optional
    sign. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** ["num/den"], or just ["num"] for integers. *)

val to_decimal_string : ?digits:int -> t -> string
(** Decimal expansion truncated to [digits] (default 12) fractional
    digits. *)

val to_float : t -> float
val num : t -> Zint.t
val den : t -> Nat.t

val of_float_exact : float -> t
(** Exact rational value of a finite float.
    @raise Invalid_argument on NaN or infinities. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val is_one : t -> bool
val is_integer : t -> bool

val is_probability : t -> bool
(** [0 <= q <= 1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val pow : t -> int -> t
(** Integer powers, negative exponents allowed on nonzero values. *)

val one_minus : t -> t
(** [1 - q]; the complement of a probability. *)

val sum : t list -> t
val prod : t list -> t

val mediant : t -> t -> t
(** [(a+c)/(b+d)] for [a/b] and [c/d]; lies strictly between them. *)

(** {1 Operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

val pp : Format.formatter -> t -> unit
