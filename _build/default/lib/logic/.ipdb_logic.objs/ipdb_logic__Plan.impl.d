lib/logic/plan.ml: Fo Ipdb_relational List Printf Result String View
