lib/bignum/zint.ml: Format Hashtbl Nat Stdlib String
