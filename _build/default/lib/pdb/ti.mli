(** Tuple-independent probabilistic databases (Definition 2.3).

    A TI-PDB is specified by its fact set and marginal probabilities; the
    occurrences of distinct facts are independent events. {!Finite} carries
    exact rational marginals and supports exhaustive world enumeration;
    {!Infinite} carries a marginal stream with a convergence certificate and
    realises Theorem 2.4: the TI-PDB exists iff the marginals are summable. *)

module Finite : sig
  type t

  val make : Ipdb_relational.Schema.t -> (Ipdb_relational.Fact.t * Ipdb_bignum.Q.t) list -> t
  (** @raise Invalid_argument on duplicate facts, nonconforming facts, or
      marginals outside [0, 1]. Facts with marginal 0 are dropped. *)

  val schema : t -> Ipdb_relational.Schema.t

  val facts : t -> (Ipdb_relational.Fact.t * Ipdb_bignum.Q.t) list
  (** Fact/marginal pairs, facts with positive marginals, sorted. *)

  val marginal : t -> Ipdb_relational.Fact.t -> Ipdb_bignum.Q.t

  val certain_facts : t -> Ipdb_relational.Fact.t list
  (** Facts with marginal 1 ([T_always] of Observation 6.1). *)

  val uncertain_facts : t -> (Ipdb_relational.Fact.t * Ipdb_bignum.Q.t) list
  (** Facts with marginal strictly between 0 and 1 ([T_sometimes]). *)

  val expected_size : t -> Ipdb_bignum.Q.t
  (** [Σ p_t] — the proof of Proposition 3.2. *)

  val prob_superset : t -> Ipdb_relational.Instance.t -> Ipdb_bignum.Q.t
  (** [Pr(D ⊆ I)], the product of the marginals of [D]'s facts (zero when
      a fact is not in the fact set). *)

  val world_prob : t -> Ipdb_relational.Instance.t -> Ipdb_bignum.Q.t
  (** Exact point probability [Pr(I = D)]. *)

  val to_finite_pdb : t -> Finite_pdb.t
  (** Exhaustive expansion into an explicit distribution.
      @raise Invalid_argument past the enumeration gate of {!Worlds}. *)

  val union_independent : t -> t -> t
  (** Disjoint union of fact sets (schemas are unioned).
      @raise Invalid_argument when fact sets overlap. *)

  val sample : t -> Random.State.t -> Ipdb_relational.Instance.t

  val induced_idb_member : t -> Ipdb_relational.Instance.t -> bool
  (** Observation 6.1: is an instance a possible world, i.e. does it contain
      all certain facts and otherwise only fact-set facts? *)

  val pp : Format.formatter -> t -> unit
end

module Infinite : sig
  type t = {
    schema : Ipdb_relational.Schema.t;
    fact : int -> Ipdb_relational.Fact.t;  (** Injective enumeration of the fact set. *)
    marginal : int -> float;
    start : int;
    tail : Ipdb_series.Series.Tail.t;  (** Certificate for [Σ p_t < ∞] (Theorem 2.4). *)
    name : string;
  }

  val make :
    name:string ->
    schema:Ipdb_relational.Schema.t ->
    fact:(int -> Ipdb_relational.Fact.t) ->
    marginal:(int -> float) ->
    ?start:int ->
    tail:Ipdb_series.Series.Tail.t ->
    unit ->
    t

  val well_defined : t -> upto:int -> (Ipdb_series.Interval.t, string) result
  (** Theorem 2.4(2): certified enclosure of [Σ p_t]; [Error] when the
      certificate fails, meaning the data does not define a TI-PDB. *)

  val expected_size : t -> upto:int -> (Ipdb_series.Interval.t, string) result
  (** Proposition 3.2 ([k = 1]): [E(|·|) = Σ p_t]. *)

  val moment_upper_bound : t -> k:int -> upto:int -> (float, string) result
  (** Finite upper bound on [E(|·|^k)] via the Lemma C.1 recurrence
      [E(|·|^k) ≤ E(|·|^(k-1)) · (k - 1 + E(|·|))] — the inductive step in
      the proof of Proposition 3.2. *)

  val truncate : t -> n:int -> Finite.t * float
  (** The finite TI-PDB on the first facts up to index [n] (marginals
      converted to nearby rationals), together with an upper bound on the
      total-variation distance to the infinite PDB (the certified marginal
      tail mass). *)

  val sample : t -> n:int -> Random.State.t -> Ipdb_relational.Instance.t * float
  (** Sample the truncation at [n]; also returns the TV error bound. *)
end
