module Interval = Ipdb_series.Interval

type reason =
  | Bounded_size of int
  | Theorem53 of { c : int; criterion_sum : Interval.t }
  | Infinite_moment of { k : int; partial : float }

type verdict =
  | In_FOTI of reason
  | Not_in_FOTI of reason
  | Undetermined of string
  | Partial of { exhausted : Ipdb_run.Error.exhaustion; detail : string }

(* Escapes the try_k / try_c search as soon as a budgeted criterion check
   reports exhaustion: continuing with the remaining (equally budgeted)
   checks would only burn the already-spent budget again. *)
exception Out_of_budget of { exhausted : Ipdb_run.Error.exhaustion; detail : string }

(* The criterion probes a classification runs, in the order the sequential
   search visits them: every certified moment k = 1..max_k, then every
   certified Theorem 5.3 capacity c = 1..max_c. *)
type probe = Moment of int * Criteria.certificate | Capacity of int * Criteria.certificate

module Trace = Ipdb_obs.Trace
module OJson = Ipdb_obs.Json

let probe_id = function
  | Moment (k, _) -> Printf.sprintf "k%d" k
  | Capacity (c, _) -> Printf.sprintf "c%d" c

(* One span per criterion probe ("k1".."k4", "c1".."c4" — the same ids
   the checkpoint format uses), nesting the criteria/series spans the
   probe runs underneath. *)
let probe_span id run =
  if not (Trace.enabled ()) then run ()
  else Trace.with_span "classify.probe" ~attrs:[ ("id", OJson.String id) ] run

let probes ?(max_k = 4) ?(max_c = 4) (cf : Zoo.certified_family) =
  let range lo hi f =
    List.filter_map f (List.init (Stdlib.max 0 (hi - lo + 1)) (fun i -> lo + i))
  in
  range 1 max_k (fun k -> Option.map (fun cert -> Moment (k, cert)) (cf.Zoo.moment_cert k))
  @ range 1 max_c (fun c -> Option.map (fun cert -> Capacity (c, cert)) (cf.Zoo.thm53_cert c))

let moment_detail k v = Printf.sprintf "moment check at k=%d: %s" k (Criteria.verdict_to_string v)

let capacity_detail c v =
  Printf.sprintf "Theorem 5.3 check at c=%d: %s" c (Criteria.verdict_to_string v)

let undetermined =
  Undetermined
    "all certified moments are finite and no certified Theorem 5.3 capacity was found: \
     the paper's criteria leave this PDB's membership open (cf. Example 3.9 and Example 5.6)"

(* Replays the sequential search's selection over the probe verdicts, in
   probe order: the first deciding (or interrupted) probe wins, moments
   before capacities, smaller indices first. Fanning the probes out over a
   pool and then selecting this way returns exactly the verdict the
   one-at-a-time search returns. *)
let rec select = function
  | [] -> undetermined
  | (probe, v) :: rest -> (
    match (probe, v) with
    | Moment (k, _), Criteria.Infinite_sum { partial; _ } ->
      Not_in_FOTI (Infinite_moment { k; partial })
    | Moment (k, _), Criteria.Partial { exhausted; _ } ->
      Partial { exhausted; detail = moment_detail k v }
    | Capacity (c, _), Criteria.Finite_sum enclosure ->
      In_FOTI (Theorem53 { c; criterion_sum = enclosure })
    | Capacity (c, _), Criteria.Partial { exhausted; _ } ->
      Partial { exhausted; detail = capacity_detail c v }
    | _, (Criteria.Finite_sum _ | Criteria.Infinite_sum _
         | Criteria.Invalid_certificate _ | Criteria.Check_failed _) -> select rest)

let classify ?pool ?budget ?(max_k = 4) ?(max_c = 4) ?(upto = 2000) (cf : Zoo.certified_family) =
  let upto = Stdlib.min upto cf.Zoo.check_upto in
  match cf.Zoo.size_bound with
  | Some b -> In_FOTI (Bounded_size b)
  | None ->
  (* A pool fans the independent probes out speculatively — but only when
     the budget cannot trip. A shared limited budget is consumed in probe
     order by the sequential search; concurrent probes would interleave
     their step reservations nondeterministically, so those runs keep the
     canonical probe order and parallelise inside each series instead. *)
  let fan_out =
    match (pool, budget) with
    | Some _, None -> true
    | Some _, Some b -> Ipdb_run.Budget.is_unlimited b
    | None, _ -> false
  in
  if fan_out then begin
    let pool = Option.get pool in
    let eval probe =
      let v =
        probe_span (probe_id probe) @@ fun () ->
        match probe with
        | Moment (k, cert) -> Criteria.moment_verdict ?pool:None ?budget cf.Zoo.family ~k ~cert ~upto
        | Capacity (c, cert) ->
          Criteria.theorem53_verdict ?pool:None ?budget cf.Zoo.family ~c ~cert ~upto
      in
      (probe, v)
    in
    select (Ipdb_par.Pool.map_ordered pool ~f:eval (probes ~max_k ~max_c cf))
  end
  else begin
    (* Theorem 5.3: look for a certified-convergent criterion series. *)
    let rec try_c c =
      if c > max_c then None
      else begin
        match cf.Zoo.thm53_cert c with
        | Some cert -> (
          match
            probe_span (Printf.sprintf "c%d" c) (fun () ->
                Criteria.theorem53_verdict ?pool ?budget cf.Zoo.family ~c ~cert ~upto)
          with
          | Criteria.Finite_sum enclosure -> Some (In_FOTI (Theorem53 { c; criterion_sum = enclosure }))
          | Criteria.Partial { exhausted; _ } as v ->
            raise
              (Out_of_budget
                 { exhausted; detail = Printf.sprintf "Theorem 5.3 check at c=%d: %s" c (Criteria.verdict_to_string v) })
          | Criteria.Infinite_sum _ | Criteria.Invalid_certificate _ | Criteria.Check_failed _ ->
            try_c (c + 1))
        | None -> try_c (c + 1)
      end
    in
    (* Proposition 3.4: look for a certified-divergent moment. *)
    let rec try_k k =
      if k > max_k then None
      else begin
        match cf.Zoo.moment_cert k with
        | Some cert -> (
          match
            probe_span (Printf.sprintf "k%d" k) (fun () ->
                Criteria.moment_verdict ?pool ?budget cf.Zoo.family ~k ~cert ~upto)
          with
          | Criteria.Infinite_sum { partial; _ } -> Some (Not_in_FOTI (Infinite_moment { k; partial }))
          | Criteria.Partial { exhausted; _ } as v ->
            raise (Out_of_budget { exhausted; detail = moment_detail k v })
          | Criteria.Finite_sum _ | Criteria.Invalid_certificate _ | Criteria.Check_failed _ ->
            try_k (k + 1))
        | None -> try_k (k + 1)
      end
    in
    try
      match try_k 1 with
      | Some v -> v
      | None -> ( match try_c 1 with Some v -> v | None -> undetermined)
    with Out_of_budget { exhausted; detail } -> Partial { exhausted; detail }
  end

(* ------------------------------------------------------------------ *)
(* Checkpointable classification                                        *)
(* ------------------------------------------------------------------ *)

module Snapshot = Ipdb_series.Series.Snapshot

type checkpoint = {
  completed : (string * Criteria.series_verdict) list;
  in_flight : (string * Snapshot.t) option;
}

let empty_checkpoint = { completed = []; in_flight = None }

(* One line per entry: "done <id> <verdict>" / "flight <id> <snapshot>".
   Check ids ("k1".."k4", "c1".."c4") are space-free, so the rest of each
   line is the (single-line) verdict or snapshot encoding. *)
let checkpoint_to_string cp =
  let lines =
    List.map
      (fun (id, v) -> Printf.sprintf "done %s %s" id (Criteria.verdict_serialize v))
      cp.completed
    @
    match cp.in_flight with
    | None -> []
    | Some (id, snap) -> [ Printf.sprintf "flight %s %s" id (Snapshot.to_string snap) ]
  in
  String.concat "\n" lines

let checkpoint_of_string s =
  let ( let* ) = Result.bind in
  let split2 line =
    match String.index_opt line ' ' with
    | None -> Error (Printf.sprintf "malformed checkpoint line %S" line)
    | Some i -> (
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match String.index_opt rest ' ' with
      | None -> Error (Printf.sprintf "malformed checkpoint line %S" line)
      | Some j ->
        Ok
          ( String.sub line 0 i,
            String.sub rest 0 j,
            String.sub rest (j + 1) (String.length rest - j - 1) ))
  in
  let lines = String.split_on_char '\n' s in
  let rec go acc lines =
    match lines with
    | [] -> Ok { acc with completed = List.rev acc.completed }
    | line :: rest ->
      if String.trim line = "" then go acc rest
      else
        let* tag, id, payload = split2 line in
        (match tag with
        | "done" ->
          let* v = Criteria.verdict_deserialize payload in
          go { acc with completed = (id, v) :: acc.completed } rest
        | "flight" ->
          let* snap = Snapshot.of_string payload in
          go { acc with in_flight = Some (id, snap) } rest
        | tag -> Error (Printf.sprintf "unknown checkpoint entry %S" tag))
  in
  go empty_checkpoint lines

(* Resumable classification keeps the canonical one-check-at-a-time order
   regardless of the pool — the checkpoint format records checks as a
   sequential history — and parallelises inside each series instead. *)
let classify_resumable ?pool ?budget ?(max_k = 4) ?(max_c = 4) ?(upto = 2000)
    ?(from = empty_checkpoint) ?save ?(progress_every = 1000) (cf : Zoo.certified_family) =
  let upto = Stdlib.min upto cf.Zoo.check_upto in
  match cf.Zoo.size_bound with
  | Some b -> In_FOTI (Bounded_size b)
  | None -> begin
    let completed = ref from.completed in
    let emit in_flight =
      match save with
      | Some s -> s { completed = !completed; in_flight }
      | None -> ()
    in
    (* Run one criterion check, replaying it from the checkpoint when a
       previous run already concluded it, resuming mid-series when it was
       in flight, and recording the outcome. A snapshot that no longer
       matches the computation (e.g. the cutoff changed between runs) is
       discarded and the check restarts from scratch. *)
    let run_check ~id check =
      match List.assoc_opt id !completed with
      | Some v ->
        Trace.event "classify.replayed" ~attrs:[ ("id", OJson.String id) ];
        v
      | None ->
        probe_span id @@ fun () ->
        let from_snap =
          match from.in_flight with Some (fid, s) when fid = id -> Some s | _ -> None
        in
        let progress =
          match save with
          | None -> None
          | Some _ -> Some (fun snap -> emit (Some (id, snap)))
        in
        let v, snap =
          match check ?from:from_snap ?progress ~progress_every () with
          | (Criteria.Check_failed (Ipdb_run.Error.Validation { what = "snapshot"; _ }), _)
            when from_snap <> None ->
            check ?from:None ?progress ~progress_every ()
          | r -> r
        in
        (match v with
        | Criteria.Partial _ -> (
          match snap with Some s -> emit (Some (id, s)) | None -> emit None)
        | v ->
          completed := !completed @ [ (id, v) ];
          emit None);
        v
    in
    let rec try_c c =
      if c > max_c then None
      else begin
        match cf.Zoo.thm53_cert c with
        | Some cert -> (
          let v =
            run_check ~id:(Printf.sprintf "c%d" c) (fun ?from ?progress ~progress_every () ->
                Criteria.theorem53_verdict_resumable ?pool ?budget ?from ?progress ~progress_every
                  cf.Zoo.family ~c ~cert ~upto)
          in
          match v with
          | Criteria.Finite_sum enclosure -> Some (In_FOTI (Theorem53 { c; criterion_sum = enclosure }))
          | Criteria.Partial { exhausted; _ } ->
            raise
              (Out_of_budget
                 {
                   exhausted;
                   detail =
                     Printf.sprintf "Theorem 5.3 check at c=%d: %s" c (Criteria.verdict_to_string v);
                 })
          | Criteria.Infinite_sum _ | Criteria.Invalid_certificate _ | Criteria.Check_failed _ ->
            try_c (c + 1))
        | None -> try_c (c + 1)
      end
    in
    let rec try_k k =
      if k > max_k then None
      else begin
        match cf.Zoo.moment_cert k with
        | Some cert -> (
          let v =
            run_check ~id:(Printf.sprintf "k%d" k) (fun ?from ?progress ~progress_every () ->
                Criteria.moment_verdict_resumable ?pool ?budget ?from ?progress ~progress_every
                  cf.Zoo.family ~k ~cert ~upto)
          in
          match v with
          | Criteria.Infinite_sum { partial; _ } -> Some (Not_in_FOTI (Infinite_moment { k; partial }))
          | Criteria.Partial { exhausted; _ } ->
            raise
              (Out_of_budget
                 {
                   exhausted;
                   detail = Printf.sprintf "moment check at k=%d: %s" k (Criteria.verdict_to_string v);
                 })
          | Criteria.Finite_sum _ | Criteria.Invalid_certificate _ | Criteria.Check_failed _ ->
            try_k (k + 1))
        | None -> try_k (k + 1)
      end
    in
    try
      match try_k 1 with
      | Some v -> v
      | None -> ( match try_c 1 with Some v -> v | None -> undetermined)
    with Out_of_budget { exhausted; detail } -> Partial { exhausted; detail }
  end

let verdict_to_string = function
  | In_FOTI (Bounded_size b) -> Printf.sprintf "in FO(TI): bounded instance size <= %d (Corollary 5.4)" b
  | In_FOTI (Theorem53 { c; criterion_sum }) ->
    Printf.sprintf "in FO(TI): Theorem 5.3 series for c=%d converges to [%g, %g]" c
      (Interval.lo criterion_sum) (Interval.hi criterion_sum)
  | In_FOTI (Infinite_moment _) -> "in FO(TI) (unexpected reason)"
  | Not_in_FOTI (Infinite_moment { k; partial }) ->
    Printf.sprintf "NOT in FO(TI): %d-th size moment certified infinite (partial sum %g, Prop. 3.4)" k partial
  | Not_in_FOTI (Bounded_size _) | Not_in_FOTI (Theorem53 _) -> "NOT in FO(TI) (unexpected reason)"
  | Undetermined msg -> "undetermined: " ^ msg
  | Partial { exhausted = _; detail } -> "partial verdict: " ^ detail

let agrees_with_paper (cf : Zoo.certified_family) verdict =
  match (cf.Zoo.expected_in_foti, verdict) with
  | None, _ | _, Undetermined _ | _, Partial _ -> true
  | Some expected, In_FOTI _ -> expected
  | Some expected, Not_in_FOTI _ -> not expected
