(** Append-only, per-record-checksummed write-ahead journal.

    One record per line, framed as

    {v ipdbj1 <length> <fnv64-hex> <escaped-payload> v}

    where [length] is the byte length of the {e raw} payload, the checksum
    is FNV-1a/64 over the raw payload, and the escaping makes arbitrary
    payload bytes (including newlines) line-safe. Appends are single
    [write]s followed by [fsync], so a crash leaves at most one torn record
    at the tail.

    Recovery is total: {!recover} scans the file, returns every record of
    the longest valid prefix, and reports the first damaged line as a
    positioned diagnostic — it never raises, whatever bytes are on disk.
    This is the crash-consistency contract the bench suite's [--resume]
    and the corruption fuzz tests rely on. *)

val format_version : string
(** The on-disk record format tag (["ipdbj1"]), printed by [ipdb version]
    so mixed-version replay fails loudly instead of mysteriously. *)

type t
(** An open journal handle for appending. *)

val open_append : ?lock:bool -> path:string -> unit -> (t, Error.t) result
(** Open (creating if missing) a journal for appending, through the
    ambient {!Ipdb_env.Env} environment. Unless [~lock:false] is given,
    first takes the advisory single-writer lock ([<path>.lock], see
    {!Ioutil.acquire_lock}); refusal surfaces as [Error (Locked _)]
    (["E_LOCKED"], exit 2) rather than risking interleaved appends from
    two live writers. The lock is released by {!close}. *)

val append : t -> string -> (unit, Error.t) result
(** Append one record (any bytes) and [fsync]. *)

val close : t -> unit
(** Close the handle (idempotent; errors ignored). *)

type tail =
  | Clean  (** every line parsed as a valid record *)
  | Torn of { line : int; reason : string }
      (** first damaged line (1-based) and why it was rejected; all
          records before it are returned *)

type recovery = { records : string list; tail : tail }

val recover : path:string -> (recovery, Error.t) result
(** Scan a journal file and return the valid prefix. A missing file is an
    empty, clean journal (so a first run and a resumed run share one code
    path); unreadable files surface as [Error (Io _)]. Damaged or torn
    records never raise — they terminate the prefix with {!Torn}. *)

val repair : path:string -> (recovery, Error.t) result
(** {!recover}, then — if the tail was torn — atomically rewrite the file
    to exactly the valid prefix (temp + fsync + rename), so that later
    appends land on a clean tail instead of burying the damage mid-file.
    Returns the recovered records with [tail = Clean] on success. A
    process that reopens its journal for appending across crashes (the
    serve daemon) must use this instead of {!recover}. *)

val checksum : string -> int64
(** FNV-1a/64 of a string (exposed for tests and cross-checking). *)

val escape : string -> string
(** Line-safe escaping used by the record framing (exposed for tests). *)

val unescape : string -> (string, string) result
