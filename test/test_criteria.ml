(* Tests for the representability criteria (Sections 3, 5.1, 6) on the
   paper's zoo of examples. *)

module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module View = Ipdb_logic.View
module Interval = Ipdb_series.Interval
module Series = Ipdb_series.Series
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Ti = Ipdb_pdb.Ti
module Bid = Ipdb_pdb.Bid
module Family = Ipdb_pdb.Family
module Criteria = Ipdb_core.Criteria
module Idb = Ipdb_core.Idb
module Zoo = Ipdb_core.Zoo
module Classifier = Ipdb_core.Classifier

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)
let inst facts = Instance.of_list facts

let expect_finite name = function
  | Criteria.Finite_sum enclosure -> enclosure
  | v -> Alcotest.failf "%s: expected finite, got %s" name (Criteria.verdict_to_string v)

let expect_infinite name = function
  | Criteria.Infinite_sum { partial; at } ->
    ignore at;
    partial
  | v -> Alcotest.failf "%s: expected infinite, got %s" name (Criteria.verdict_to_string v)

let get_cert name = function Some c -> c | None -> Alcotest.failf "%s: missing certificate" name

(* ------------------------------------------------------------------ *)
(* Example 3.5: E(|.|) = 3, E(|.|^2) = ∞                               *)
(* ------------------------------------------------------------------ *)

let test_ex35_moments () =
  let cf = Zoo.example_3_5 in
  let m1 =
    expect_finite "E|.|"
      (Criteria.moment_verdict cf.Zoo.family ~k:1 ~cert:(get_cert "k=1" (cf.Zoo.moment_cert 1)) ~upto:40)
  in
  Alcotest.(check bool) "E(|.|) = 3 (paper)" true (Interval.contains m1 3.0);
  Alcotest.(check bool) "tight" true (Interval.width m1 < 1e-6);
  let partial =
    expect_infinite "E|.|^2"
      (Criteria.moment_verdict cf.Zoo.family ~k:2
         ~cert:(get_cert "k=2" (cf.Zoo.moment_cert 2))
         ~upto:cf.Zoo.check_upto)
  in
  (* each term is exactly 3 *)
  Alcotest.(check bool) "partial = 3 * terms" true (partial > 150.0)

let test_ex35_total_probability () =
  match Family.total_probability Zoo.example_3_5.Zoo.family ~upto:60 with
  | Ok s -> Alcotest.(check bool) "total = 1" true (Interval.contains s 1.0 && Interval.width s < 1e-9)
  | Error e -> Alcotest.fail e

let test_ex35_exact_truncation () =
  (* exact weights: 3/4 + 3/16 + 3/64 + ... *)
  let d = Family.truncate_exact Zoo.example_3_5.Zoo.family ~n:3 in
  let q = Alcotest.testable Q.pp Q.equal in
  Alcotest.(check q) "P(D_1 | first 3)" (Q.of_ints 16 21)
    (Finite_pdb.prob d (Zoo.example_3_5.Zoo.family.Family.instance 1))

let test_ex35_classified () =
  match Classifier.classify Zoo.example_3_5 with
  | Classifier.Not_in_FOTI (Classifier.Infinite_moment { k; _ }) ->
    Alcotest.(check int) "second moment kills it" 2 k
  | v -> Alcotest.failf "wrong verdict: %s" (Classifier.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Example 3.9: all moments finite, not in FO(TI)                      *)
(* ------------------------------------------------------------------ *)

let test_ex39_moments_finite () =
  let cf = Zoo.example_3_9 in
  List.iter
    (fun k ->
      let m =
        expect_finite
          (Printf.sprintf "E|.|^%d" k)
          (Criteria.moment_verdict cf.Zoo.family ~k ~cert:(get_cert "moment" (cf.Zoo.moment_cert k)) ~upto:5000)
      in
      Alcotest.(check bool) (Printf.sprintf "moment %d positive and finite" k) true (Interval.lo m >= 0.0))
    [ 1; 2; 3; 4 ]

let test_ex39_thm53_diverges () =
  let cf = Zoo.example_3_9 in
  List.iter
    (fun c ->
      let partial =
        expect_infinite
          (Printf.sprintf "thm53 c=%d" c)
          (Criteria.theorem53_verdict cf.Zoo.family ~c ~cert:(get_cert "thm53" (cf.Zoo.thm53_cert c)) ~upto:5000)
      in
      Alcotest.(check bool) "grows" true (partial > 0.0))
    [ 1; 2; 3 ]

let test_ex39_lemma37_refutation () =
  (* For every candidate arity r, eventually every n violates the
     Lemma 3.7 inequality — the Example 3.9 / Theorem 3.10 argument. *)
  let prob, adom, a = Zoo.example_3_9_lemma37_data () in
  (* The violation threshold grows with the candidate arity r (the paper
     needs ⌈log n⌉ >= 3r² + r): test each r on a window past its own
     threshold. *)
  List.iter
    (fun (r, lo) ->
      match Criteria.lemma37_refutation ~prob ~adom_size:adom ~a ~rs:[ r ] ~range:(lo, lo + 1000) with
      | [ (_, violations) ] ->
        Alcotest.(check int) (Printf.sprintf "all n violate for r=%d" r) 1001 violations
      | _ -> Alcotest.fail "unexpected shape")
    [ (1, 1 lsl 10); (2, 1 lsl 15); (3, 1 lsl 31); (4, 1 lsl 53) ];
  (* conversely, below the threshold the bound is still satisfied: no
     contradiction arises from small prefixes alone *)
  match Criteria.lemma37_refutation ~prob ~adom_size:adom ~a ~rs:[ 3 ] ~range:(1024, 2048) with
  | [ (_, violations) ] -> Alcotest.(check int) "r=3 not yet violated at small n" 0 violations
  | _ -> Alcotest.fail "unexpected shape"

let test_ex39_domain_disjoint () =
  Alcotest.(check bool) "domain disjoint (Lemma 3.7 hypothesis)" true
    (Family.domain_disjoint_on Zoo.example_3_9.Zoo.family ~upto:200)

(* ------------------------------------------------------------------ *)
(* Example 5.5: unbounded size, in FO(TI) via Theorem 5.3              *)
(* ------------------------------------------------------------------ *)

let test_ex55_thm53_converges () =
  let cf = Zoo.example_5_5 in
  let s =
    expect_finite "thm53 c=1"
      (Criteria.theorem53_verdict cf.Zoo.family ~c:1 ~cert:(get_cert "c=1" (cf.Zoo.thm53_cert 1)) ~upto:200)
  in
  (* the paper bounds the c=1 criterion sum by 2/x *)
  let x = Interval.midpoint Zoo.example_5_5_normalizer in
  Alcotest.(check bool) "below the paper's 2/x bound" true (Interval.hi s <= (2.0 /. x) +. 1e-9)

let test_ex55_unbounded () =
  Alcotest.(check bool) "size unbounded" false
    (Family.bounded_size_on Zoo.example_5_5.Zoo.family ~upto:50 ~bound:49)

let test_ex55_classified () =
  match Classifier.classify Zoo.example_5_5 with
  | Classifier.In_FOTI (Classifier.Theorem53 { c; _ }) -> Alcotest.(check int) "c = 1 suffices" 1 c
  | v -> Alcotest.failf "wrong verdict: %s" (Classifier.verdict_to_string v)

let test_ex55_normalizer () =
  Alcotest.(check bool) "x in (0,1)" true
    (Interval.lo Zoo.example_5_5_normalizer > 0.56 && Interval.hi Zoo.example_5_5_normalizer < 0.57)

(* ------------------------------------------------------------------ *)
(* Example 5.6 / Prop. D.2: TI-PDB violating the Thm 5.3 criterion     *)
(* ------------------------------------------------------------------ *)

let test_ex56_well_defined () =
  match Ti.Infinite.well_defined Zoo.example_5_6_ti ~upto:4000 with
  | Ok s ->
    (* Σ 1/(i²+1) ≈ 1.0767; in particular finite: a legal TI-PDB (Thm 2.4) *)
    Alcotest.(check bool) "marginal sum finite" true (Interval.hi s < 1.1 && Interval.lo s > 1.0)
  | Error e -> Alcotest.fail e

let test_ex56_moments () =
  (match Ti.Infinite.expected_size Zoo.example_5_6_ti ~upto:4000 with
  | Ok s -> Alcotest.(check bool) "expected size finite" true (Interval.hi s < 1.1)
  | Error e -> Alcotest.fail e);
  match Ti.Infinite.moment_upper_bound Zoo.example_5_6_ti ~k:4 ~upto:4000 with
  | Ok b -> Alcotest.(check bool) "4th moment bounded (Prop 3.2)" true (Float.is_finite b)
  | Error e -> Alcotest.fail e

let test_ex56_criterion_diverges () =
  (* the grouped minorant of Prop. D.2 diverges for each c *)
  let z = Zoo.z_enclosure ~upto:2000 in
  Alcotest.(check bool) "Z in (0,1)" true (Interval.lo z > 0.0 && Interval.hi z < 1.0);
  List.iter
    (fun c ->
      match Zoo.propD2_divergence_cert ~c ~z_lo:(Interval.lo z) with
      | Criteria.Divergence certificate -> (
        match
          Series.certify_divergence ~start:1
            (Zoo.propD2_grouped_term ~c ~z_lo:(Interval.lo z))
            ~certificate ~upto:120
        with
        | Ok (Series.Diverges { partial; _ }) ->
          Alcotest.(check bool) (Printf.sprintf "c=%d grouped sum explodes" c) true (partial > 1e6)
        | Ok _ | Error _ -> Alcotest.failf "c=%d: certificate rejected" c)
      | Criteria.Tail _ -> Alcotest.fail "expected divergence certificate")
    [ 1; 2; 3 ]

let test_propD3_criterion_diverges () =
  let z = Zoo.z_enclosure ~upto:2000 in
  List.iter
    (fun c ->
      match Zoo.propD3_divergence_cert ~c ~z_lo:(Interval.lo z) with
      | Criteria.Divergence certificate -> (
        match
          Series.certify_divergence ~start:1
            (Zoo.propD3_grouped_term ~c ~z_lo:(Interval.lo z))
            ~certificate ~upto:120
        with
        | Ok (Series.Diverges _) -> ()
        | Ok _ | Error _ -> Alcotest.failf "c=%d: certificate rejected" c)
      | Criteria.Tail _ -> Alcotest.fail "expected divergence certificate")
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Lemma 3.3: views preserve finite moments                            *)
(* ------------------------------------------------------------------ *)

let test_binomial () =
  let qt = Alcotest.testable Q.pp Q.equal in
  Alcotest.(check qt) "C(5,2)" (Q.of_int 10) (Criteria.binomial 5 2);
  Alcotest.(check qt) "C(n,0)" Q.one (Criteria.binomial 7 0);
  Alcotest.(check qt) "out of range" Q.zero (Criteria.binomial 3 5)

let test_lemma33_bound_concrete () =
  let schema = Schema.make [ ("R", 2) ] in
  let ti, view = Zoo.example_b3 in
  let d = Ti.Finite.to_finite_pdb ti in
  let image = Finite_pdb.map_view view d in
  List.iter
    (fun k ->
      let bound =
        Criteria.lemma33_bound ~view ~input_schema:schema ~input_moment:(Finite_pdb.moment d) ~k
      in
      Alcotest.(check bool)
        (Printf.sprintf "image E|.|^%d <= Lemma 3.3 bound" k)
        true
        (Q.leq (Finite_pdb.moment image k) bound))
    [ 1; 2; 3 ]

let lemma33_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"Lemma 3.3 bound on generated PDBs + monotone views"
       (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
       (fun seed ->
         let st = Ipdb_pdb.Generate.rng seed in
         let schema = Schema.make [ ("R", 2); ("S", 1) ] in
         let d = Ipdb_pdb.Generate.finite_pdb st ~schema ~worlds:3 ~max_size:3 ~universe:4 in
         let view = Ipdb_pdb.Generate.monotone_view st ~input_schema:schema in
         let image = Finite_pdb.map_view view d in
         List.for_all
           (fun k ->
             Q.leq (Finite_pdb.moment image k)
               (Criteria.lemma33_bound ~view ~input_schema:schema ~input_moment:(Finite_pdb.moment d) ~k))
           [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* Lemma 3.6: the edge-cover bound on concrete TI-PDBs and views       *)
(* ------------------------------------------------------------------ *)

let lemma36_holds ti view world =
  let data = Criteria.lemma36_bound ~ti ~view ~world in
  match data.Criteria.exact_lhs with
  | None -> true
  | Some lhs -> Q.to_float lhs <= data.Criteria.bound +. 1e-12

let test_lemma36_identity () =
  let ti =
    Ti.Finite.make (Schema.make [ ("R", 1) ])
      [ (fact "R" [ 1 ], Q.of_ints 1 3); (fact "R" [ 2 ], Q.of_ints 1 5) ]
  in
  let view = View.identity (Schema.make [ ("R", 1) ]) in
  List.iter
    (fun world -> Alcotest.(check bool) "bound holds" true (lemma36_holds ti view world))
    [ inst []; inst [ fact "R" [ 1 ] ]; inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ] ]

let test_lemma36_join_view () =
  let ti, view = Zoo.example_b3 in
  let expanded = Ti.Finite.to_finite_pdb ti in
  let image = Finite_pdb.map_view view expanded in
  List.iter
    (fun (world, _) -> Alcotest.(check bool) "bound holds on B.3" true (lemma36_holds ti view world))
    (Finite_pdb.support image)

let arb_ti_world =
  QCheck.make
    ~print:(fun (ti, w) -> Format.asprintf "%a world %s" Ti.Finite.pp ti (Instance.to_string w))
    QCheck.Gen.(
      let* n = 1 -- 5 in
      let* dens = list_size (return n) (2 -- 9) in
      let facts = List.mapi (fun i d -> (fact "R" [ i; i + d ], Q.of_ints 1 d)) dens in
      let ti = Ti.Finite.make (Schema.make [ ("R", 2) ]) facts in
      let* world_bits = int_bound ((1 lsl n) - 1) in
      let world =
        inst (List.filteri (fun i _ -> world_bits land (1 lsl i) <> 0) (List.map fst facts))
      in
      return (ti, world))

let lemma36_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"Lemma 3.6 bound on random TI + identity view" arb_ti_world
       (fun (ti, world) -> lemma36_holds ti (View.identity (Schema.make [ ("R", 2) ])) world))

let test_minimal_cover_sum () =
  (* the intermediate bound of the proof:
     Pr(every v in V appears) <= Σ over minimal covers of Π q_e *)
  let ti =
    Ti.Finite.make (Schema.make [ ("R", 2) ])
      [ (fact "R" [ 1; 2 ], Q.of_ints 1 2); (fact "R" [ 2; 3 ], Q.of_ints 1 3); (fact "R" [ 1; 3 ], Q.of_ints 1 5) ]
  in
  let target = [ vi 1; vi 2; vi 3 ] in
  let cover_sum = Criteria.minimal_cover_sum ~ti ~target in
  let expanded = Ti.Finite.to_finite_pdb ti in
  let prob_covered =
    Finite_pdb.prob_event expanded (fun i ->
        List.for_all (fun v -> List.exists (Value.equal v) (Instance.adom i)) target)
  in
  Alcotest.(check bool) "edge-cover bound" true (Q.leq prob_covered cover_sum)

(* ------------------------------------------------------------------ *)
(* Section 6: IDBs                                                     *)
(* ------------------------------------------------------------------ *)

let test_observation_62 () =
  (* V(IDB(D)) = IDB(V(D)) on a finite PDB *)
  let d =
    Finite_pdb.make (Schema.make [ ("R", 1) ])
      [ (inst [], Q.of_ints 1 4);
        (inst [ fact "R" [ 1 ] ], Q.of_ints 1 4);
        (inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ], Q.half)
      ]
  in
  let v = View.make [ ("T", [], Fo.Exists ("x", Fo.atom "R" [ Fo.v "x" ])) ] in
  let lhs =
    List.sort_uniq Instance.compare (List.map (View.apply v) (Idb.induced_of_finite d))
  in
  let rhs = List.sort_uniq Instance.compare (Idb.induced_of_finite (Finite_pdb.map_view v d)) in
  Alcotest.(check bool) "Observation 6.2" true (List.equal Instance.equal lhs rhs)

let test_prop64 () =
  let d = Bid.Finite.to_finite_pdb Zoo.example_b2 in
  (match Idb.prop64_obstruction d with
  | Some w ->
    Alcotest.(check bool) "distinct facts" true (not (Fact.equal w.Idb.fact1 w.Idb.fact2))
  | None -> Alcotest.fail "expected an exclusion witness");
  (* a TI expansion has no exclusion witness *)
  let ti = Ti.Finite.make (Schema.make [ ("R", 1) ]) [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.half) ] in
  Alcotest.(check bool) "TI has none" true (Idb.prop64_obstruction (Ti.Finite.to_finite_pdb ti) = None)

let sizes_idb name sizes_fn =
  Idb.make ~name
    ~schema:(Schema.make [ ("R", 1) ])
    ~instance:(fun n -> inst (List.init (sizes_fn n) (fun j -> fact "R" [ (1000 * n) + j ])))
    ~size:sizes_fn ~start:1 ()

let test_lemma65 () =
  (* an IDB with gappy sizes (powers of two) still underlies an FO(TI) PDB *)
  let idb = sizes_idb "gappy" (fun n -> 1 lsl n) in
  let fam = Idb.lemma65_family idb in
  (match Family.total_probability fam ~upto:60 with
  | Ok s -> Alcotest.(check bool) "probabilities sum to 1" true (Interval.contains s 1.0)
  | Error e -> Alcotest.fail e);
  (* the Theorem 5.3 series converges with the lemma's certificate *)
  match Criteria.theorem53_verdict fam ~c:1 ~cert:(Idb.lemma65_criterion_cert idb ~upto:60) ~upto:60 with
  | Criteria.Finite_sum _ -> ()
  | v -> Alcotest.failf "lemma 6.5 series: %s" (Criteria.verdict_to_string v)

let test_lemma65_weights () =
  let q = Alcotest.testable Q.pp Q.equal in
  Alcotest.(check q) "x_i exact" (Q.of_ints 1 64) (Idb.lemma65_weight ~size:2 ~index:2);
  Alcotest.(check q) "empty world weight" Q.one (Idb.lemma65_weight ~size:0 ~index:5)

let test_lemma66 () =
  let idb = sizes_idb "growing" (fun n -> n) in
  ignore Idb.lemma66_divergence_cert;
  let fam = Idb.lemma66_family idb ~subsequence_upto:50 in
  (match Family.total_probability fam ~upto:4000 with
  | Ok s -> Alcotest.(check bool) "sums to 1" true (Interval.contains s 1.0)
  | Error e -> Alcotest.fail e);
  (* expected size diverges with the harmonic-subsequence certificate *)
  match Criteria.moment_verdict fam ~k:1 ~cert:(Idb.lemma66_divergence_cert_for idb) ~upto:3000 with
  | Criteria.Infinite_sum { partial; _ } -> Alcotest.(check bool) "partial grows" true (partial > 2.0)
  | v -> Alcotest.failf "expected divergence: %s" (Criteria.verdict_to_string v)

let test_theorem67 () =
  (* bounded IDB: first branch *)
  (match Idb.theorem67 (sizes_idb "bounded" (fun n -> 1 + (n mod 3))) ~upto:100 with
  | Idb.Bounded_hence_representable b -> Alcotest.(check int) "bound 3" 3 b
  | Idb.Unbounded_hence_undetermined _ -> Alcotest.fail "misclassified bounded IDB");
  (* unbounded IDB: both witnesses *)
  match Idb.theorem67 (sizes_idb "growing" (fun n -> n)) ~upto:100 with
  | Idb.Unbounded_hence_undetermined { in_foti; not_in_foti } ->
    Alcotest.(check bool) "same sample space" true
      (Instance.equal (in_foti.Family.instance 7) (not_in_foti.Family.instance 7))
  | Idb.Bounded_hence_representable _ -> Alcotest.fail "misclassified unbounded IDB"

(* ------------------------------------------------------------------ *)
(* Classifier agreement with the paper                                 *)
(* ------------------------------------------------------------------ *)

let test_zoo_certificates_validate () =
  (* hygiene: every family's own probability-tail certificate must validate
     over (a large slice of) its declared horizon, and total mass must be 1 *)
  List.iter
    (fun (name, cf) ->
      let horizon = Stdlib.min cf.Zoo.check_upto 3000 in
      match Family.total_probability cf.Zoo.family ~upto:horizon with
      | Ok enclosure ->
        Alcotest.(check bool) (name ^ " total probability contains 1") true
          (Interval.contains enclosure 1.0)
      | Error m -> Alcotest.failf "%s: probability certificate failed: %s" name m)
    Zoo.all_families

let test_domain_overlap () =
  Alcotest.(check int) "disjoint family has overlap 1" 1
    (Family.max_domain_overlap_on Zoo.example_5_5.Zoo.family ~upto:20);
  (* a family whose worlds all share one element: overlap = prefix length *)
  let shared =
    Family.make ~name:"shared" ~schema:(Schema.make [ ("R", 1) ])
      ~instance:(fun n -> inst [ fact "R" [ 0 ]; fact "R" [ n ] ])
      ~prob:(fun n -> Float.ldexp 1.0 (-n))
      ~start:1
      ~prob_tail:(Series.Tail.Geometric { index = 1; first = 0.5; ratio = 0.5 })
      ()
  in
  Alcotest.(check int) "shared element counted (Remark 3.8)" 10
    (Family.max_domain_overlap_on shared ~upto:10)

let test_classifier_agreement () =
  List.iter
    (fun (name, cf) ->
      let v = Classifier.classify cf in
      Alcotest.(check bool) (name ^ " verdict consistent with the paper") true
        (Classifier.agrees_with_paper cf v))
    Zoo.all_families

let test_classifier_bounded () =
  match Classifier.classify Zoo.sensor_bounded with
  | Classifier.In_FOTI (Classifier.Bounded_size 2) -> ()
  | v -> Alcotest.failf "wrong verdict: %s" (Classifier.verdict_to_string v)

let test_classifier_ex39_undetermined () =
  (* the generic criteria alone cannot decide Example 3.9 — the paper needs
     the bespoke Lemma 3.7 argument *)
  match Classifier.classify Zoo.example_3_9 with
  | Classifier.Undetermined _ -> ()
  | v -> Alcotest.failf "expected undetermined, got: %s" (Classifier.verdict_to_string v)

let () =
  Alcotest.run "criteria"
    [ ( "example-3.5",
        [ Alcotest.test_case "moments" `Quick test_ex35_moments;
          Alcotest.test_case "total probability" `Quick test_ex35_total_probability;
          Alcotest.test_case "exact truncation" `Quick test_ex35_exact_truncation;
          Alcotest.test_case "classified out of FO(TI)" `Quick test_ex35_classified
        ] );
      ( "example-3.9",
        [ Alcotest.test_case "moments finite" `Quick test_ex39_moments_finite;
          Alcotest.test_case "thm 5.3 series diverges" `Quick test_ex39_thm53_diverges;
          Alcotest.test_case "Lemma 3.7 refutation" `Quick test_ex39_lemma37_refutation;
          Alcotest.test_case "domain disjoint" `Quick test_ex39_domain_disjoint
        ] );
      ( "example-5.5",
        [ Alcotest.test_case "criterion converges" `Quick test_ex55_thm53_converges;
          Alcotest.test_case "unbounded size" `Quick test_ex55_unbounded;
          Alcotest.test_case "classified into FO(TI)" `Quick test_ex55_classified;
          Alcotest.test_case "normalizer enclosure" `Quick test_ex55_normalizer
        ] );
      ( "example-5.6-and-D",
        [ Alcotest.test_case "well-defined TI (Thm 2.4)" `Quick test_ex56_well_defined;
          Alcotest.test_case "finite moments (Prop 3.2)" `Quick test_ex56_moments;
          Alcotest.test_case "criterion diverges (Prop D.2)" `Quick test_ex56_criterion_diverges;
          Alcotest.test_case "BID analogue (Prop D.3)" `Quick test_propD3_criterion_diverges
        ] );
      ( "lemma-3.3",
        [ Alcotest.test_case "binomials" `Quick test_binomial;
          Alcotest.test_case "Example B.3 bound" `Quick test_lemma33_bound_concrete;
          lemma33_random
        ] );
      ( "lemma-3.6",
        [ Alcotest.test_case "identity view" `Quick test_lemma36_identity;
          Alcotest.test_case "join view (B.3)" `Quick test_lemma36_join_view;
          lemma36_random;
          Alcotest.test_case "minimal cover sum" `Quick test_minimal_cover_sum
        ] );
      ( "section-6",
        [ Alcotest.test_case "Observation 6.2" `Quick test_observation_62;
          Alcotest.test_case "Proposition 6.4" `Quick test_prop64;
          Alcotest.test_case "Lemma 6.5" `Quick test_lemma65;
          Alcotest.test_case "Lemma 6.5 weights" `Quick test_lemma65_weights;
          Alcotest.test_case "Lemma 6.6" `Quick test_lemma66;
          Alcotest.test_case "Theorem 6.7 dichotomy" `Quick test_theorem67
        ] );
      ( "classifier",
        [ Alcotest.test_case "zoo certificates validate" `Quick test_zoo_certificates_validate;
          Alcotest.test_case "domain overlap (Remark 3.8)" `Quick test_domain_overlap;
          Alcotest.test_case "agreement with the paper" `Quick test_classifier_agreement;
          Alcotest.test_case "bounded shortcut" `Quick test_classifier_bounded;
          Alcotest.test_case "Example 3.9 stays open" `Quick test_classifier_ex39_undetermined
        ] )
    ]
