lib/logic/safe_range.ml: Fo List Printf Set String View
