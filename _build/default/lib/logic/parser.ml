module Value = Ipdb_relational.Value

type token =
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ
  | NEQ
  | AND
  | OR
  | NOT
  | IMPLIES
  | IFF
  | EXISTS
  | FORALL
  | TRUE
  | FALSE
  | BOT
  | ASSIGN
  | SEMI
  | UIDENT of string
  | LIDENT of string
  | INT of int
  | STR of string

exception Parse_error of string

let fail_at pos msg = raise (Parse_error (Printf.sprintf "%s (at byte %d)" msg pos))

(* ------------------------------------------------------------------ *)
(* Lexer (byte-level, with explicit UTF-8 sequences for the symbols)   *)
(* ------------------------------------------------------------------ *)

let symbols =
  [ ("\xE2\x88\x83", EXISTS) (* ∃ *);
    ("\xE2\x88\x80", FORALL) (* ∀ *);
    ("\xC2\xAC", NOT) (* ¬ *);
    ("\xE2\x88\xA7", AND) (* ∧ *);
    ("\xE2\x88\xA8", OR) (* ∨ *);
    ("\xE2\x86\x92", IMPLIES) (* → *);
    ("\xE2\x86\x94", IFF) (* ↔ *);
    ("\xE2\x8A\xA4", TRUE) (* ⊤ *);
    ("\xE2\x89\xA0", NEQ) (* ≠ *)
  ]

let bot_utf8 = "\xE2\x8A\xA5" (* ⊥ *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '$'

let keyword = function
  | "exists" -> Some EXISTS
  | "forall" -> Some FORALL
  | "not" -> Some NOT
  | "and" -> Some AND
  | "or" -> Some OR
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let starts_with prefix i = i + String.length prefix <= n && String.sub s i (String.length prefix) = prefix in
  let rec go i =
    if i >= n then ()
    else begin
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if starts_with bot_utf8 i then begin
        (* "⊥f" prints False; a bare "⊥" is the bottom value *)
        let after = i + String.length bot_utf8 in
        if after < n && s.[after] = 'f' && (after + 1 >= n || not (is_ident_char s.[after + 1])) then begin
          out := FALSE :: !out;
          go (after + 1)
        end
        else begin
          out := BOT :: !out;
          go after
        end
      end
      else begin
        match List.find_opt (fun (sym, _) -> starts_with sym i) symbols with
        | Some (sym, tok) ->
          out := tok :: !out;
          go (i + String.length sym)
        | None ->
          if starts_with ":=" i then begin
            out := ASSIGN :: !out;
            go (i + 2)
          end
          else if starts_with "<->" i then begin
            out := IFF :: !out;
            go (i + 3)
          end
          else if starts_with "->" i then begin
            out := IMPLIES :: !out;
            go (i + 2)
          end
          else if starts_with "!=" i then begin
            out := NEQ :: !out;
            go (i + 2)
          end
          else if starts_with "#bot" i then begin
            out := BOT :: !out;
            go (i + 4)
          end
          else begin
            match c with
            | '(' -> out := LPAREN :: !out; go (i + 1)
            | ')' -> out := RPAREN :: !out; go (i + 1)
            | ',' -> out := COMMA :: !out; go (i + 1)
            | '.' -> out := DOT :: !out; go (i + 1)
            | '=' -> out := EQ :: !out; go (i + 1)
            | '&' -> out := AND :: !out; go (i + 1)
            | '|' -> out := OR :: !out; go (i + 1)
            | '!' -> out := NOT :: !out; go (i + 1)
            | ';' -> out := SEMI :: !out; go (i + 1)
            | '\'' ->
              let rec close j = if j >= n then fail_at i "unterminated string" else if s.[j] = '\'' then j else close (j + 1) in
              let j = close (i + 1) in
              out := STR (String.sub s (i + 1) (j - i - 1)) :: !out;
              go (j + 1)
            | '0' .. '9' ->
              let rec last j = if j < n && s.[j] >= '0' && s.[j] <= '9' then last (j + 1) else j in
              let j = last i in
              out := INT (int_of_string (String.sub s i (j - i))) :: !out;
              go j
            | '-' when i + 1 < n && s.[i + 1] >= '0' && s.[i + 1] <= '9' ->
              let rec last j = if j < n && s.[j] >= '0' && s.[j] <= '9' then last (j + 1) else j in
              let j = last (i + 1) in
              out := INT (int_of_string (String.sub s i (j - i))) :: !out;
              go j
            | c when is_ident_start c ->
              let rec last j = if j < n && is_ident_char s.[j] then last (j + 1) else j in
              let j = last i in
              let word = String.sub s i (j - i) in
              let tok =
                match keyword word with
                | Some t -> t
                | None -> if c >= 'A' && c <= 'Z' then UIDENT word else LIDENT word
              in
              out := tok :: !out;
              go j
            | _ -> fail_at i (Printf.sprintf "unexpected character %C" c)
          end
      end
    end
  in
  go 0;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { tokens : token array; mutable pos : int }

let peek st = if st.pos < Array.length st.tokens then Some st.tokens.(st.pos) else None
let advance st = st.pos <- st.pos + 1

let expect st tok msg =
  match peek st with
  | Some t when t = tok -> advance st
  | _ -> fail_at st.pos msg

let parse_term st =
  match peek st with
  | Some (LIDENT x) ->
    advance st;
    Some (Fo.V x)
  | Some (INT n) ->
    advance st;
    Some (Fo.C (Value.Int n))
  | Some (STR s) ->
    advance st;
    Some (Fo.C (Value.Str s))
  | Some BOT ->
    advance st;
    Some (Fo.C Value.Bot)
  | _ -> None

let rec parse_formula st = parse_iff st

and parse_iff st =
  let lhs = parse_implies st in
  match peek st with
  | Some IFF ->
    advance st;
    let rhs = parse_implies st in
    parse_iff_tail (Fo.Iff (lhs, rhs)) st
  | _ -> lhs

and parse_iff_tail acc st =
  match peek st with
  | Some IFF ->
    advance st;
    let rhs = parse_implies st in
    parse_iff_tail (Fo.Iff (acc, rhs)) st
  | _ -> acc

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | Some IMPLIES ->
    advance st;
    let rhs = parse_implies st in
    Fo.Implies (lhs, rhs)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec tail acc =
    match peek st with
    | Some OR ->
      advance st;
      tail (Fo.Or (acc, parse_and st))
    | _ -> acc
  in
  tail lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec tail acc =
    match peek st with
    | Some AND ->
      advance st;
      tail (Fo.And (acc, parse_unary st))
    | _ -> acc
  in
  tail lhs

and parse_unary st =
  match peek st with
  | Some NOT ->
    advance st;
    Fo.Not (parse_unary st)
  | Some EXISTS ->
    advance st;
    parse_quantifier st (fun x f -> Fo.Exists (x, f))
  | Some FORALL ->
    advance st;
    parse_quantifier st (fun x f -> Fo.Forall (x, f))
  | Some TRUE ->
    advance st;
    Fo.True
  | Some FALSE ->
    advance st;
    Fo.False
  | Some (UIDENT rel) ->
    advance st;
    expect st LPAREN ("expected ( after relation " ^ rel);
    let rec args acc =
      match peek st with
      | Some RPAREN ->
        advance st;
        List.rev acc
      | _ -> (
        match parse_term st with
        | None -> fail_at st.pos "expected a term"
        | Some t -> (
          match peek st with
          | Some COMMA ->
            advance st;
            args (t :: acc)
          | Some RPAREN ->
            advance st;
            List.rev (t :: acc)
          | _ -> fail_at st.pos "expected , or ) in argument list"))
    in
    Fo.Atom (rel, args [])
  | Some LPAREN -> begin
    (* Either a parenthesised formula or an equality whose left term is
       parenthesised — formulas only, so: parenthesised formula. *)
    advance st;
    let f = parse_formula st in
    expect st RPAREN "expected )";
    (* possibly an equality of a parenthesised... no: formulas only *)
    f
  end
  | _ -> (
    (* equality between terms *)
    match parse_term st with
    | None -> fail_at st.pos "expected a formula"
    | Some lhs -> (
      match peek st with
      | Some EQ ->
        advance st;
        (match parse_term st with
        | Some rhs -> Fo.Eq (lhs, rhs)
        | None -> fail_at st.pos "expected a term after =")
      | Some NEQ ->
        advance st;
        (match parse_term st with
        | Some rhs -> Fo.Not (Fo.Eq (lhs, rhs))
        | None -> fail_at st.pos "expected a term after !=")
      | _ -> fail_at st.pos "expected = or != after a term"))

and parse_quantifier st mk =
  (* one or more variables, then '.', then the body *)
  let rec collect acc =
    match peek st with
    | Some (LIDENT x) ->
      advance st;
      collect (x :: acc)
    | Some DOT ->
      advance st;
      List.rev acc
    | _ -> fail_at st.pos "expected variables then . after a quantifier"
  in
  let vars = collect [] in
  if vars = [] then fail_at st.pos "quantifier binds no variable";
  let body = parse_unary st in
  List.fold_right mk vars body

let run_parser f s =
  match tokenize s with
  | exception Parse_error msg -> Error msg
  | tokens -> (
    let st = { tokens; pos = 0 } in
    match f st with
    | exception Parse_error msg -> Error msg
    | result -> if st.pos = Array.length tokens then Ok result else Error "trailing input"
    )

let formula s = run_parser parse_formula s

let formula_exn s =
  match formula s with Ok f -> f | Error msg -> invalid_arg ("Parser.formula_exn: " ^ msg)

let sentence s =
  match formula s with
  | Error _ as e -> e
  | Ok f ->
    if Fo.is_sentence f then Ok f
    else Error ("free variables: " ^ String.concat ", " (Fo.free_vars f))

let parse_view_def st =
  match peek st with
  | Some (UIDENT rel) ->
    advance st;
    expect st LPAREN "expected ( after view relation";
    let rec heads acc =
      match peek st with
      | Some RPAREN ->
        advance st;
        List.rev acc
      | Some (LIDENT x) -> (
        advance st;
        match peek st with
        | Some COMMA ->
          advance st;
          heads (x :: acc)
        | Some RPAREN ->
          advance st;
          List.rev (x :: acc)
        | _ -> fail_at st.pos "expected , or ) in head")
      | _ -> fail_at st.pos "expected head variable"
    in
    let head = heads [] in
    expect st ASSIGN "expected := after the head";
    let body = parse_formula st in
    (rel, head, body)
  | _ -> fail_at st.pos "expected a view head like T(x,y)"

let view_def s = run_parser parse_view_def s

let view s =
  run_parser
    (fun st ->
      let rec defs acc =
        let d = parse_view_def st in
        match peek st with
        | Some SEMI ->
          advance st;
          defs (d :: acc)
        | _ -> List.rev (d :: acc)
      in
      View.make (defs []))
    s
