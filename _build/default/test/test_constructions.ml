(* Tests for the paper's constructions: the finite completeness theorem
   (Figure 1), Theorem 4.1 (deconditioning), Lemma 5.1 / Corollary 5.4
   (segmentation) and Lemma 5.7 / Theorem 5.9 (BID). Each is verified as an
   exact distribution equality in rational arithmetic. *)

module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Schema = Ipdb_relational.Schema
module Fact = Ipdb_relational.Fact
module Instance = Ipdb_relational.Instance
module Fo = Ipdb_logic.Fo
module View = Ipdb_logic.View
module Classify = Ipdb_logic.Classify
module Finite_pdb = Ipdb_pdb.Finite_pdb
module Ti = Ipdb_pdb.Ti
module Bid = Ipdb_pdb.Bid
module Family = Ipdb_pdb.Family
module Finite_complete = Ipdb_core.Finite_complete
module Decondition = Ipdb_core.Decondition
module Segmentation = Ipdb_core.Segmentation
module Bid_repr = Ipdb_core.Bid_repr
module Zoo = Ipdb_core.Zoo

let vi n = Value.Int n
let fact r args = Fact.make r (List.map vi args)
let inst facts = Instance.of_list facts
let schema_r1 = Schema.make [ ("R", 1) ]
let schema_r2 = Schema.make [ ("R", 2) ]

(* ------------------------------------------------------------------ *)
(* Finite completeness: PDB_fin = FO(TI_fin)                           *)
(* ------------------------------------------------------------------ *)

let check_complete name d =
  let repr = Finite_complete.represent d in
  Alcotest.(check bool) (name ^ ": view(ti) = pdb exactly") true (Finite_complete.verify d repr)

let test_complete_simple () =
  check_complete "three worlds"
    (Finite_pdb.make schema_r1
       [ (inst [], Q.of_ints 1 4);
         (inst [ fact "R" [ 1 ] ], Q.of_ints 1 4);
         (inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ], Q.half)
       ])

let test_complete_single_world () =
  check_complete "single world" (Finite_pdb.make schema_r1 [ (inst [ fact "R" [ 5 ] ], Q.one) ])

let test_complete_two_relations () =
  let schema = Schema.make [ ("R", 2); ("S", 1) ] in
  check_complete "two relations"
    (Finite_pdb.make schema
       [ (inst [ fact "R" [ 1; 2 ]; fact "S" [ 1 ] ], Q.of_ints 2 5);
         (inst [ fact "S" [ 3 ] ], Q.of_ints 2 5);
         (inst [], Q.of_ints 1 5)
       ])

let test_complete_exclusive_facts () =
  (* Example B.2 as a finite PDB: representable with an FO (non-monotone)
     view even though no CQ view can do it. *)
  check_complete "example B.2" (Bid.Finite.to_finite_pdb Zoo.example_b2)

(* Random finite PDBs. *)
let arb_finite_pdb =
  QCheck.make
    ~print:(fun d -> Format.asprintf "%a" Finite_pdb.pp d)
    QCheck.Gen.(
      let* n_worlds = 1 -- 5 in
      let* worlds =
        list_size (return n_worlds)
          (let* sz = 0 -- 3 in
           let* vals = list_size (return sz) (0 -- 5) in
           return (inst (List.map (fun v -> fact "R" [ v ]) vals)))
      in
      let* weights = list_size (return n_worlds) (1 -- 9) in
      let weighted = List.map2 (fun w p -> (w, Q.of_int p)) worlds weights in
      return (Finite_pdb.make_unnormalized schema_r1 weighted))

let complete_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"completeness on random finite PDBs" arb_finite_pdb (fun d ->
         Finite_complete.verify d (Finite_complete.represent d)))

(* ------------------------------------------------------------------ *)
(* PDB_fin = CQ(BID_fin) (Figure 1, [16, 42])                          *)
(* ------------------------------------------------------------------ *)

let check_cq_bid name d =
  let repr = Finite_complete.represent_cq_bid d in
  Alcotest.(check bool) (name ^ ": CQ view over BID = pdb exactly") true
    (Finite_complete.verify_cq_bid d repr)

let test_cq_bid_simple () =
  check_cq_bid "three worlds"
    (Finite_pdb.make schema_r1
       [ (inst [], Q.of_ints 1 4);
         (inst [ fact "R" [ 1 ] ], Q.of_ints 1 4);
         (inst [ fact "R" [ 1 ]; fact "R" [ 2 ] ], Q.half)
       ])

let test_cq_bid_multi_relation () =
  let schema = Schema.make [ ("R", 2); ("S", 1) ] in
  check_cq_bid "two relations"
    (Finite_pdb.make schema
       [ (inst [ fact "R" [ 1; 2 ]; fact "S" [ 1 ] ], Q.of_ints 2 5);
         (inst [ fact "S" [ 3 ] ], Q.of_ints 3 5)
       ]);
  (* the exclusive-facts PDB of Example B.2 also fits: CQ(BID) is complete
     where CQ(TI) is not *)
  check_cq_bid "example B.2" (Bid.Finite.to_finite_pdb Zoo.example_b2)

let cq_bid_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"CQ(BID) completeness on random finite PDBs" arb_finite_pdb
       (fun d -> Finite_complete.verify_cq_bid d (Finite_complete.represent_cq_bid d)))

(* ------------------------------------------------------------------ *)
(* Proposition B.4: monotone views of TI_fin collapse to CQ            *)
(* ------------------------------------------------------------------ *)

let test_b4_example_b3 () =
  let ti, view = Zoo.example_b3 in
  let repr = Finite_complete.monotone_to_cq ti view in
  Alcotest.(check bool) "result view is CQ" true (View.is_cq repr.Finite_complete.view);
  let original = Finite_pdb.map_view view (Ti.Finite.to_finite_pdb ti) in
  let rebuilt = Finite_pdb.map_view repr.Finite_complete.view (Ti.Finite.to_finite_pdb repr.Finite_complete.ti) in
  Alcotest.(check bool) "CQ(TI) image equals monotone image exactly" true (Finite_pdb.equal original rebuilt)

let test_b4_with_certain_facts () =
  let ti =
    Ti.Finite.make schema_r2
      [ (fact "R" [ 1; 2 ], Q.one); (fact "R" [ 2; 3 ], Q.of_ints 1 3); (fact "R" [ 3; 4 ], Q.half) ]
  in
  let view =
    View.make
      [ ("T", [ "x"; "z" ],
         Fo.Exists ("y", Fo.And (Fo.atom "R" [ Fo.v "x"; Fo.v "y" ], Fo.atom "R" [ Fo.v "y"; Fo.v "z" ]))) ]
  in
  let repr = Finite_complete.monotone_to_cq ti view in
  let original = Finite_pdb.map_view view (Ti.Finite.to_finite_pdb ti) in
  let rebuilt = Finite_pdb.map_view repr.Finite_complete.view (Ti.Finite.to_finite_pdb repr.Finite_complete.ti) in
  Alcotest.(check bool) "paths with certain base fact" true (Finite_pdb.equal original rebuilt)

let test_b4_rejects_nonmonotone () =
  let ti, _ = Zoo.example_b3 in
  let bad = View.make [ ("T", [ "x" ], Fo.Not (Fo.atom "R" [ Fo.v "x"; Fo.v "x" ])) ] in
  Alcotest.check_raises "non-positive view rejected"
    (Invalid_argument "Finite_complete.monotone_to_cq: view is not syntactically positive") (fun () ->
      ignore (Finite_complete.monotone_to_cq ti bad))

(* ------------------------------------------------------------------ *)
(* Example B.3: the image is neither TI nor BID                        *)
(* ------------------------------------------------------------------ *)

let test_example_b3_table () =
  let ti, view = Zoo.example_b3 in
  let image = Finite_pdb.map_view view (Ti.Finite.to_finite_pdb ti) in
  let p = Q.of_ints 1 3 and p' = Q.half in
  List.iter
    (fun (w, expected) ->
      Alcotest.(check bool)
        ("P(" ^ Instance.to_string w ^ ")")
        true
        (Q.equal expected (Finite_pdb.prob image w)))
    (Zoo.example_b3_expected p p');
  Alcotest.(check int) "3 worlds as in the paper's table" 3 (Finite_pdb.num_worlds image);
  (* not TI *)
  Alcotest.(check bool) "image not TI" false (Finite_pdb.is_tuple_independent image);
  (* not BID for any 2-fact partition: worlds ∅ and {t,t'} exist but {t'}
     does not, contradicting block structure; check both partitions *)
  let t = Fact.make "T" [ Value.Str "a"; Value.Str "b" ] in
  let t' = Fact.make "T" [ Value.Str "a"; Value.Str "a" ] in
  Alcotest.(check bool) "not BID (separate blocks)" false (Finite_pdb.is_bid image ~blocks:[ [ t ]; [ t' ] ]);
  Alcotest.(check bool) "not BID (single block)" false (Finite_pdb.is_bid image ~blocks:[ [ t; t' ] ])

(* ------------------------------------------------------------------ *)
(* Example B.2: two maximal worlds obstruct monotone views of TI       *)
(* ------------------------------------------------------------------ *)

let test_example_b2_maximal () =
  let d = Bid.Finite.to_finite_pdb Zoo.example_b2 in
  Alcotest.(check int) "two maximal worlds" 2 (List.length (Finite_pdb.maximal_worlds d));
  (* while every monotone view of a TI-PDB has exactly one (Prop. B.1):
     spot-check on images of random monotone views *)
  let ti, view = Zoo.example_b3 in
  let image = Finite_pdb.map_view view (Ti.Finite.to_finite_pdb ti) in
  Alcotest.(check int) "monotone image: unique maximal world" 1 (List.length (Finite_pdb.maximal_worlds image))

(* ------------------------------------------------------------------ *)
(* Theorem 4.1: deconditioning                                         *)
(* ------------------------------------------------------------------ *)

let check_decondition name (input : Decondition.input) =
  let output = Decondition.decondition input in
  Alcotest.(check bool) (name ^ ": view'(J) = Phi(I | phi) exactly") true (Decondition.verify input output)

let test_decondition_basic () =
  (* I: two unary facts; condition: at least one fact; view: identity *)
  let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.of_ints 1 3) ] in
  let condition = Fo.Exists ("x", Fo.atom "R" [ Fo.v "x" ]) in
  let view = View.identity schema_r1 in
  check_decondition "identity view, nonempty condition" { Decondition.ti; condition; view }

let test_decondition_projection_view () =
  let ti =
    Ti.Finite.make schema_r2 [ (fact "R" [ 1; 2 ], Q.half); (fact "R" [ 2; 2 ], Q.of_ints 2 3) ]
  in
  (* condition: no fact R(x,x) with x = 1 .. i.e. diagonal-free on 1 *)
  let condition = Fo.Not (Fo.atom "R" [ Fo.ci 1; Fo.ci 1 ]) in
  let view = View.make [ ("S", [ "x" ], Fo.Exists ("y", Fo.atom "R" [ Fo.v "x"; Fo.v "y" ])) ] in
  check_decondition "projection view" { Decondition.ti; condition; view }

let test_decondition_trivial_condition () =
  let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.of_ints 1 4) ] in
  check_decondition "condition True" { Decondition.ti; condition = Fo.True; view = View.identity schema_r1 }

let test_decondition_deterministic_target () =
  (* conditioning forces a single world: the p0 = 1 shortcut *)
  let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.half) ] in
  let condition = Fo.atom "R" [ Fo.ci 1 ] in
  let input = { Decondition.ti; condition; view = View.identity schema_r1 } in
  let output = Decondition.decondition input in
  Alcotest.(check int) "no copies needed" 0 output.Decondition.copies;
  Alcotest.(check bool) "exact" true (Decondition.verify input output)

let test_decondition_exclusivity_condition () =
  (* condition imposes mutual exclusivity — the resulting PDB is the
     paradigmatic non-TI one, yet Theorem 4.1 still represents it as an
     unconditional FO view of a TI-PDB *)
  let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.half) ] in
  let condition =
    Fo.Not (Fo.And (Fo.atom "R" [ Fo.ci 1 ], Fo.atom "R" [ Fo.ci 2 ]))
  in
  check_decondition "mutual exclusivity" { Decondition.ti; condition; view = View.identity schema_r1 }

let test_decondition_k_bound () =
  let ti = Ti.Finite.make schema_r1 [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.of_ints 1 3) ] in
  let condition = Fo.Exists ("x", Fo.atom "R" [ Fo.v "x" ]) in
  let input = { Decondition.ti; condition; view = View.identity schema_r1 } in
  let output = Decondition.decondition input in
  (* (1 - P(psi))^k < p0 must hold for the chosen k *)
  let failure = Q.pow (Q.one_minus output.Decondition.psi_prob) output.Decondition.copies in
  Alcotest.(check bool) "k sufficient" true (Q.lt failure output.Decondition.p0);
  Alcotest.(check bool) "q0 in (0,1)" true
    (Q.gt output.Decondition.q0 Q.zero && Q.lt output.Decondition.q0 Q.one)

(* ------------------------------------------------------------------ *)
(* Lemma 5.1 / Corollary 5.4: segmentation                             *)
(* ------------------------------------------------------------------ *)

let small_pdb =
  Finite_pdb.make schema_r1
    [ (inst [], Q.of_ints 1 4);
      (inst [ fact "R" [ 1 ] ], Q.of_ints 1 4);
      (inst [ fact "R" [ 2 ]; fact "R" [ 3 ] ], Q.half)
    ]

let test_segmentation_bounded_exact () =
  (* Corollary 5.4: c = max size makes everything exact *)
  let out = Segmentation.bounded_size_representation small_pdb in
  Alcotest.(check bool) "marginals exact" true out.Segmentation.exact;
  Alcotest.(check bool) "distribution equality" true (Segmentation.verify_exact small_pdb out)

let test_segmentation_two_relations () =
  let schema = Schema.make [ ("R", 2); ("S", 1) ] in
  let d =
    Finite_pdb.make schema
      [ (inst [ fact "R" [ 1; 2 ]; fact "S" [ 7 ] ], Q.of_ints 3 5);
        (inst [ fact "S" [ 9 ] ], Q.of_ints 2 5)
      ]
  in
  let out = Segmentation.bounded_size_representation d in
  Alcotest.(check bool) "mixed-arity exact" true (Segmentation.verify_exact d out)

let test_segmentation_c1_float () =
  (* c = 1: several segments per world, irrational roots — verify within a
     tight TV tolerance *)
  let out = Segmentation.segment ~c:1 small_pdb in
  Alcotest.(check bool) "not exact (roots)" true (not out.Segmentation.exact);
  let tv = Segmentation.verify_tv small_pdb out in
  Alcotest.(check bool) "tv below 1e-9" true (tv < 1e-9)

let test_segmentation_chain_structure () =
  (* with c = 1 a 2-fact world becomes a 2-segment chain *)
  let out = Segmentation.segment ~c:1 small_pdb in
  let facts = Ti.Finite.facts out.Segmentation.ti in
  (* 0 facts for ∅? no — the empty world gets one all-⊥ segment; world2: 1;
     world3: 2  => 4 segment facts *)
  Alcotest.(check int) "segment facts" 4 (List.length facts)

let test_segmentation_example_5_5_truncation () =
  (* Example 5.5 truncated: unbounded sizes, c = 1 as the paper prescribes *)
  let d = Family.truncate_exact Zoo.example_5_5.Zoo.family ~n:3 in
  let out = Segmentation.segment ~c:1 d in
  let tv = Segmentation.verify_tv d out in
  Alcotest.(check bool) "Example 5.5 truncation via Lemma 5.1" true (tv < 1e-9)

let test_segmentation_sensor_exact () =
  let d = Family.truncate_exact Zoo.sensor_bounded.Zoo.family ~n:3 in
  let out = Segmentation.bounded_size_representation d in
  Alcotest.(check bool) "sensor PDB exact via Corollary 5.4" true (Segmentation.verify_exact d out)

(* ------------------------------------------------------------------ *)
(* Lemma 5.7 / Theorem 5.9: BID                                        *)
(* ------------------------------------------------------------------ *)

let test_bid_repr_basic () =
  let bid =
    Bid.Finite.make schema_r1
      [ [ (fact "R" [ 1 ], Q.of_ints 1 3); (fact "R" [ 2 ], Q.of_ints 1 3) ];
        [ (fact "R" [ 3 ], Q.half) ]
      ]
  in
  let out = Bid_repr.represent bid in
  Alcotest.(check bool) "exact equality" true (Bid_repr.verify bid out)

let test_bid_repr_zero_residual () =
  (* residual-zero block: the q = p/(1+p) branch plus the ∃! condition *)
  let bid =
    Bid.Finite.make schema_r1
      [ [ (fact "R" [ 1 ], Q.half); (fact "R" [ 2 ], Q.half) ]; [ (fact "R" [ 3 ], Q.of_ints 1 4) ] ]
  in
  let out = Bid_repr.represent bid in
  Alcotest.(check bool) "exact with residual 0" true (Bid_repr.verify bid out)

let test_bid_repr_example_b2 () =
  let out = Bid_repr.represent Zoo.example_b2 in
  Alcotest.(check bool) "Example B.2 via Lemma 5.7" true (Bid_repr.verify Zoo.example_b2 out)

let test_bid_repr_multi_relation () =
  let schema = Schema.make [ ("R", 1); ("S", 2) ] in
  let bid =
    Bid.Finite.make schema
      [ [ (fact "R" [ 1 ], Q.of_ints 2 5); (Fact.make "S" [ vi 1; vi 2 ], Q.of_ints 2 5) ];
        [ (Fact.make "S" [ vi 3; vi 3 ], Q.of_ints 3 4) ]
      ]
  in
  let out = Bid_repr.represent bid in
  Alcotest.(check bool) "cross-relation block" true (Bid_repr.verify bid out)

let test_bid_repr_propD3_truncation () =
  let bid = Zoo.propD3_truncation ~blocks:3 in
  let out = Bid_repr.represent bid in
  Alcotest.(check bool) "Prop D.3 BID via Theorem 5.9" true (Bid_repr.verify bid out)

let arb_bid =
  QCheck.make
    ~print:(fun b -> Format.asprintf "%a" Bid.Finite.pp b)
    QCheck.Gen.(
      let* n_blocks = 1 -- 3 in
      let* blocks =
        list_size (return n_blocks)
          (let* n_facts = 1 -- 2 in
           let* dens = list_size (return n_facts) (2 -- 5) in
           return (List.map (fun d -> Q.of_ints 1 (d + n_facts)) dens))
      in
      let counter = ref 0 in
      let blocks =
        List.map
          (List.map (fun p ->
               incr counter;
               (fact "R" [ !counter ], p)))
          blocks
      in
      return (Bid.Finite.make schema_r1 blocks))

let bid_repr_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"Theorem 5.9 on random BID-PDBs" arb_bid (fun bid ->
         Bid_repr.verify bid (Bid_repr.represent bid)))

(* ------------------------------------------------------------------ *)
(* Composition: Theorem 5.3 end-to-end                                 *)
(* ------------------------------------------------------------------ *)

let test_thm53_end_to_end () =
  (* Lemma 5.1 gives (TI, φ, Φ); Theorem 4.1 removes the condition: the
     composite is an unconditional FO view of a TI-PDB representing the
     original (truncated) PDB — the full Theorem 5.3 pipeline. *)
  let d =
    Finite_pdb.make schema_r1
      [ (inst [ fact "R" [ 1 ] ], Q.of_ints 2 3); (inst [ fact "R" [ 2 ]; fact "R" [ 3 ] ], Q.of_ints 1 3) ]
  in
  let seg = Segmentation.bounded_size_representation d in
  Alcotest.(check bool) "segmentation exact" true seg.Segmentation.exact;
  let input =
    { Decondition.ti = seg.Segmentation.ti; condition = seg.Segmentation.condition; view = seg.Segmentation.view }
  in
  let target = Decondition.target input in
  Alcotest.(check bool) "conditioned pipeline reproduces d" true (Finite_pdb.equal target d);
  let output = Decondition.decondition input in
  Alcotest.(check bool) "unconditional representation" true (Decondition.verify input output)

let () =
  Alcotest.run "constructions"
    [ ( "finite-completeness",
        [ Alcotest.test_case "three worlds" `Quick test_complete_simple;
          Alcotest.test_case "single world" `Quick test_complete_single_world;
          Alcotest.test_case "two relations" `Quick test_complete_two_relations;
          Alcotest.test_case "exclusive facts (B.2)" `Quick test_complete_exclusive_facts;
          complete_random
        ] );
      ( "cq-bid-completeness",
        [ Alcotest.test_case "three worlds" `Quick test_cq_bid_simple;
          Alcotest.test_case "multi-relation + B.2" `Quick test_cq_bid_multi_relation;
          cq_bid_random
        ] );
      ( "prop-b4",
        [ Alcotest.test_case "Example B.3 view" `Quick test_b4_example_b3;
          Alcotest.test_case "with certain facts" `Quick test_b4_with_certain_facts;
          Alcotest.test_case "rejects non-monotone" `Quick test_b4_rejects_nonmonotone
        ] );
      ( "figure-1-separations",
        [ Alcotest.test_case "Example B.3 table" `Quick test_example_b3_table;
          Alcotest.test_case "Example B.2 maximal worlds" `Quick test_example_b2_maximal
        ] );
      ( "theorem-4.1",
        [ Alcotest.test_case "basic" `Quick test_decondition_basic;
          Alcotest.test_case "projection view" `Quick test_decondition_projection_view;
          Alcotest.test_case "trivial condition" `Quick test_decondition_trivial_condition;
          Alcotest.test_case "deterministic target" `Quick test_decondition_deterministic_target;
          Alcotest.test_case "exclusivity condition" `Quick test_decondition_exclusivity_condition;
          Alcotest.test_case "k and q0 bounds" `Quick test_decondition_k_bound
        ] );
      ( "lemma-5.1",
        [ Alcotest.test_case "Corollary 5.4 exact" `Quick test_segmentation_bounded_exact;
          Alcotest.test_case "two relations" `Quick test_segmentation_two_relations;
          Alcotest.test_case "c=1 chains (float)" `Quick test_segmentation_c1_float;
          Alcotest.test_case "chain structure" `Quick test_segmentation_chain_structure;
          Alcotest.test_case "Example 5.5 truncation" `Quick test_segmentation_example_5_5_truncation;
          Alcotest.test_case "sensor PDB exact" `Quick test_segmentation_sensor_exact
        ] );
      ( "theorem-5.9",
        [ Alcotest.test_case "basic" `Quick test_bid_repr_basic;
          Alcotest.test_case "zero residual" `Quick test_bid_repr_zero_residual;
          Alcotest.test_case "Example B.2" `Quick test_bid_repr_example_b2;
          Alcotest.test_case "multi-relation blocks" `Quick test_bid_repr_multi_relation;
          Alcotest.test_case "Prop D.3 truncation" `Quick test_bid_repr_propD3_truncation;
          bid_repr_random
        ] );
      ("theorem-5.3", [ Alcotest.test_case "end to end" `Quick test_thm53_end_to_end ])
    ]
