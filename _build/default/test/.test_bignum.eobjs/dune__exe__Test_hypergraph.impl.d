test/test_hypergraph.ml: Alcotest Format Ipdb_hypergraph Ipdb_relational List QCheck QCheck_alcotest
