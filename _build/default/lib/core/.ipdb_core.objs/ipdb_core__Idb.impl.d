lib/core/idb.ml: Criteria Float Hashtbl Ipdb_bignum Ipdb_pdb Ipdb_relational Ipdb_series List Stdlib
