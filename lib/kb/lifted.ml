(* Lifted UCQ inference over the indexed store. See lifted.mli. *)

module Q = Ipdb_bignum.Q
module Fo = Ipdb_logic.Fo
module Value = Ipdb_relational.Value
module Pqe = Ipdb_pdb.Pqe
module Estimate = Ipdb_pdb.Estimate
module Budget = Ipdb_run.Budget
module Run_error = Ipdb_run.Error
module Pool = Ipdb_par.Pool
module Chunk = Ipdb_par.Chunk
module Metrics = Ipdb_obs.Metrics
module Trace = Ipdb_obs.Trace

type mc = { samples : int; seed : int; delta : float }

type outcome =
  | Exact of Q.t
  | Estimated of Estimate.estimate

let par_threshold = 1024
let chunk_size = 1024

let m_exact = Metrics.counter "kb.query.exact"
let m_mc = Metrics.counter "kb.query.mc"
let m_subsets = Metrics.counter "kb.query.subsets"
let m_candidates = Metrics.counter "kb.query.candidates"

exception Unsafe of string
exception Trip of Run_error.exhaustion
exception Reject of Run_error.t

let check budget =
  match Budget.check budget with Ok () -> () | Error e -> raise (Trip e)

(* ------------------------------------------------------------------ *)
(* Compilation: Pqe atoms -> store handles and interned-id arguments    *)
(* ------------------------------------------------------------------ *)

type arg =
  | AVar of string
  | AId of int  (** interned value id *)

type latom = { tbl : Store.rel_handle; args : arg array }

let validate_schema store (ucq : Pqe.ucq) =
  List.iter
    (fun (q : Pqe.cq) ->
      List.iter
        (fun (a : Pqe.cq_atom) ->
          match Store.handle store a.rel with
          | None ->
            raise
              (Reject
                 (Run_error.Validation
                    { what = "kb.query"; msg = Printf.sprintf "unknown relation %s" a.rel }))
          | Some tbl ->
            let want = Store.handle_arity tbl in
            let got = List.length a.args in
            if want <> got then
              raise
                (Reject
                   (Run_error.Validation
                      {
                        what = "kb.query";
                        msg = Printf.sprintf "relation %s has arity %d, used with %d arguments" a.rel want got;
                      })))
        q.atoms)
    ucq

(* [None] when some constant occurs nowhere in the store: no fact can
   match the atom, so the whole conjunction has probability zero. *)
let compile store (q : Pqe.cq) =
  let exception Empty in
  try
    Some
      (List.map
         (fun (a : Pqe.cq_atom) ->
           let tbl =
             match Store.handle store a.rel with
             | Some tbl -> tbl
             | None -> raise Empty (* validated earlier; belt and braces *)
           in
           let args =
             Array.of_list
               (List.map
                  (function
                    | Fo.V x -> AVar x
                    | Fo.C v -> (
                      match Store.intern_find store v with
                      | Some id -> AId id
                      | None -> raise Empty))
                  a.args)
           in
           { tbl; args })
         q.atoms)
  with Empty -> None

let atom_vars a =
  Array.to_list a.args
  |> List.filter_map (function AVar x -> Some x | AId _ -> None)
  |> List.sort_uniq String.compare

let is_ground a = Array.for_all (function AId _ -> true | AVar _ -> false) a.args

(* Connected components of atoms under the shares-a-variable relation. *)
let components atoms =
  let rec grow comp vars rest =
    let more, rest =
      List.partition (fun a -> List.exists (fun x -> List.mem x vars) (atom_vars a)) rest
    in
    if more = [] then (List.rev comp, rest)
    else
      grow (List.rev_append more comp)
        (List.sort_uniq String.compare (vars @ List.concat_map atom_vars more))
        rest
  in
  let rec go = function
    | [] -> []
    | a :: rest ->
      let comp, rest = grow [ a ] (atom_vars a) rest in
      comp :: go rest
  in
  go atoms

(* ------------------------------------------------------------------ *)
(* Index access                                                        *)
(* ------------------------------------------------------------------ *)

(* Rows of [a.tbl] matching the AId positions of [a]. *)
let support_rows a =
  let arity = Array.length a.args in
  let mask = ref 0 and nbound = ref 0 in
  for pos = 0 to arity - 1 do
    match a.args.(pos) with
    | AId _ ->
      mask := !mask lor (1 lsl pos);
      incr nbound
    | AVar _ -> ()
  done;
  let key = Array.make !nbound 0 in
  let i = ref 0 in
  for pos = 0 to arity - 1 do
    match a.args.(pos) with
    | AId id ->
      key.(!i) <- id;
      incr i
    | AVar _ -> ()
  done;
  Store.rows_matching a.tbl ~mask:!mask ~key

let positions_of_var a x =
  let out = ref [] in
  Array.iteri (fun pos arg -> if arg = AVar x then out := pos :: !out) a.args;
  List.rev !out

let subst_atom x id a =
  { a with args = Array.map (function AVar y when String.equal y x -> AId id | arg -> arg) a.args }

(* ------------------------------------------------------------------ *)
(* The extensional plan                                                *)
(* ------------------------------------------------------------------ *)

let ground_key a = (Store.handle_name a.tbl, Array.map (function AId id -> id | AVar _ -> -1) a.args)

(* Product of marginals of distinct ground atoms (independent facts);
   zero as soon as one is absent. *)
let ground_product ground =
  let seen = Hashtbl.create 8 in
  let rec go acc = function
    | [] -> acc
    | a :: rest ->
      let k = ground_key a in
      if Hashtbl.mem seen k then go acc rest
      else begin
        Hashtbl.add seen k ();
        match support_rows a with
        | [||] -> Q.zero
        | rows -> go (Q.mul acc (Store.row_prob a.tbl rows.(0))) rest
      end
  in
  go Q.one ground

(* Candidate interned ids for [root] read from the component atom with
   the smallest support; rows whose repeated root positions disagree
   match no single binding and are dropped (exact); candidates are
   sorted ascending so evaluation order is deterministic. *)
let root_candidates comp root =
  let pick (best, best_rows) a =
    let rows = support_rows a in
    match best with
    | Some _ when Array.length rows >= Array.length best_rows -> (best, best_rows)
    | _ -> (Some a, rows)
  in
  let best, rows = List.fold_left pick (None, [||]) comp in
  let a = Option.get best in
  let poss = positions_of_var a root in
  let p0 = List.hd poss in
  let ids = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let v = Store.cell a.tbl ~row ~pos:p0 in
      if List.for_all (fun p -> Store.cell a.tbl ~row ~pos:p = v) poss then
        Hashtbl.replace ids v ())
    rows;
  let out = Hashtbl.fold (fun id () acc -> id :: acc) ids [] in
  Array.of_list (List.sort compare out)

let rec eval_atoms ?pool ~depth budget atoms =
  let ground, open_ = List.partition is_ground atoms in
  (* kb-refined safety: open atoms self-join-free, relations disjoint
     from the ground atoms' *)
  let open_rels = List.map (fun a -> Store.handle_name a.tbl) open_ in
  let sorted = List.sort String.compare open_rels in
  let rec dup = function a :: (b :: _ as r) -> if String.equal a b then Some a else dup r | _ -> None in
  (match dup sorted with
  | Some r -> raise (Unsafe (Printf.sprintf "self-join on %s" r))
  | None -> ());
  List.iter
    (fun g ->
      let r = Store.handle_name g.tbl in
      if List.mem r open_rels then
        raise (Unsafe (Printf.sprintf "relation %s occurs both ground and with variables" r)))
    ground;
  let pg = ground_product ground in
  if Q.is_zero pg then Q.zero
  else
    List.fold_left
      (fun acc comp -> if Q.is_zero acc then acc else Q.mul acc (eval_component ?pool ~depth budget comp))
      pg (components open_)

and eval_component ?pool ~depth budget comp =
  (* independent project: a root variable occurring in every atom *)
  let var_sets = List.map atom_vars comp in
  let all_vars = List.sort_uniq String.compare (List.concat var_sets) in
  let roots = List.filter (fun x -> List.for_all (List.mem x) var_sets) all_vars in
  match roots with
  | [] ->
    raise
      (Unsafe
         (Printf.sprintf "no root variable among {%s} (query not hierarchical)"
            (String.concat ", " all_vars)))
  | root :: _ ->
    let cands = root_candidates comp root in
    let n = Array.length cands in
    Metrics.add m_candidates n;
    let eval_one id =
      check budget;
      Q.one_minus (eval_atoms ?pool ~depth:(depth + 1) budget (List.map (subst_atom root id) comp))
    in
    let miss_product =
      match pool with
      | Some pool when depth = 0 && n >= par_threshold ->
        (* size-deterministic chunks; each worker folds its chunk's
           1 − p factors, and the per-chunk products are folded in plan
           order. Q.mul is exact, so the result is bit-identical to the
           serial fold for any jobs count. *)
        let chunks = List.of_seq (Chunk.plan ~size:chunk_size ~start:0 ~upto:(n - 1) ()) in
        let partials =
          Pool.map_ordered pool
            ~f:(fun (c : Chunk.t) ->
              let acc = ref Q.one in
              for i = c.lo to c.hi do
                acc := Q.mul !acc (eval_one cands.(i))
              done;
              !acc)
            chunks
        in
        List.fold_left Q.mul Q.one partials
      | _ ->
        let acc = ref Q.one in
        for i = 0 to n - 1 do
          acc := Q.mul !acc (eval_one cands.(i))
        done;
        !acc
    in
    Q.one_minus miss_product

let eval_conj ?pool budget store (q : Pqe.cq) =
  match compile store q with
  | None -> Q.zero
  | Some atoms -> eval_atoms ?pool ~depth:0 budget atoms

(* ------------------------------------------------------------------ *)
(* Inclusion–exclusion                                                 *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

(* Raises [Unsafe] / [Trip]. *)
let ucq_exact ?pool budget store ucq =
  let terms = Array.of_list (Pqe.dedupe_ucq ucq) in
  let k = Array.length terms in
  if k = 0 then Q.zero
  else if k > Pqe.max_union_terms then
    raise (Unsafe (Printf.sprintf "union of %d terms exceeds the inclusion-exclusion gate (%d)" k Pqe.max_union_terms))
  else begin
    Metrics.add m_subsets ((1 lsl k) - 1);
    (* Signed sum over subsets via a batched accumulator: each term's
       normalisation cost is deferred, the total is canonical. *)
    let total = Q.Accum.create () in
    for mask = 1 to (1 lsl k) - 1 do
      let sel = ref [] in
      for i = k - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then sel := terms.(i) :: !sel
      done;
      let conj = Pqe.normalize_closed_cq (Pqe.conjoin_cqs !sel) in
      let p = eval_conj ?pool budget store conj in
      if popcount mask land 1 = 1 then Q.Accum.add total p else Q.Accum.sub total p
    done;
    Q.Accum.total total
  end

let ucq_probability ?pool ?budget store ucq =
  let budget = Option.value budget ~default:Budget.unlimited in
  match ucq_exact ?pool budget store ucq with
  | p -> Ok (Some p)
  | exception Unsafe _ -> Ok None
  | exception Trip e -> Error (Run_error.Exhausted { what = "kb.query"; reason = e })

(* ------------------------------------------------------------------ *)
(* Monte-Carlo fallback                                                *)
(* ------------------------------------------------------------------ *)

(* Backtracking satisfaction of a compiled CQ in one sampled world.
   [included tbl row] says whether the world keeps that fact. *)
let sat_cq included atoms =
  let rec go env = function
    | [] -> true
    | a :: rest ->
      let arity = Array.length a.args in
      (* resolve env-bound variables to ids for this atom *)
      let resolved =
        Array.map
          (function
            | AId id -> AId id
            | AVar x -> ( match List.assoc_opt x env with Some id -> AId id | None -> AVar x))
          a.args
      in
      let a = { a with args = resolved } in
      let rows = support_rows a in
      let try_row row =
        if not (included a.tbl row) then false
        else begin
          (* bind free positions, checking repeated-variable consistency *)
          let env' = ref env in
          let ok = ref true in
          for pos = 0 to arity - 1 do
            match a.args.(pos) with
            | AId _ -> ()
            | AVar x -> (
              let v = Store.cell a.tbl ~row ~pos in
              match List.assoc_opt x !env' with
              | Some v' -> if v <> v' then ok := false
              | None -> env' := (x, v) :: !env')
          done;
          !ok && go !env' rest
        end
      in
      Array.exists try_row rows
  in
  go [] atoms

let mc_fallback budget store ucq { samples; seed; delta } =
  (match Estimate.validate_params ~samples ~delta with
  | Ok () -> ()
  | Error e -> raise (Reject e));
  let compiled = List.filter_map (compile store) ucq in
  (* float thresholds per row, precomputed once *)
  let tbls =
    let seen = Hashtbl.create 8 in
    List.concat compiled
    |> List.filter_map (fun a ->
         let name = Store.handle_name a.tbl in
         if Hashtbl.mem seen name then None
         else begin
           Hashtbl.add seen name ();
           Some a.tbl
         end)
  in
  let thresholds =
    List.map
      (fun tbl ->
        (Store.handle_name tbl, Array.init (Store.handle_rows tbl) (fun row -> Q.to_float (Store.row_prob tbl row))))
      tbls
  in
  let worlds = List.map (fun tbl -> (Store.handle_name tbl, Bytes.create (Store.handle_rows tbl))) tbls in
  let included tbl row =
    match List.assoc_opt (Store.handle_name tbl) worlds with
    | Some bits -> Bytes.get bits row = '\001'
    | None -> false
  in
  let st = Random.State.make [| seed |] in
  let hits = ref 0 in
  let completed = ref 0 in
  (try
     for _ = 1 to samples do
       check budget;
       List.iter
         (fun (name, bits) ->
           let ps = List.assoc name thresholds in
           Bytes.iteri (fun row _ -> Bytes.set bits row (if Random.State.float st 1.0 < ps.(row) then '\001' else '\000')) bits)
         worlds;
       if List.exists (sat_cq included) compiled then incr hits;
       incr completed
     done
   with Trip e -> if !completed = 0 then raise (Trip e));
  (* a budget trip mid-run degrades to the samples already drawn *)
  let n = !completed in
  match Estimate.hoeffding_halfwidth ~samples:n ~delta with
  | Error e -> raise (Reject e)
  | Ok hw ->
    {
      Estimate.mean = float_of_int !hits /. float_of_int n;
      samples = n;
      statistical_halfwidth = hw;
      truncation_bias = 0.;
      confidence = 1. -. delta;
    }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let ucq_of_sentence phi =
  match Pqe.ucq_of_formula phi with
  | Some ucq -> ucq
  | None ->
    raise
      (Reject
         (Run_error.Validation
            {
              what = "kb.query";
              msg = "query must be a positive-existential sentence (exists, and, or, atoms)";
            }))

let query ?pool ?budget ?mc store phi =
  Trace.with_span "kb.query" @@ fun () ->
  let budget = Option.value budget ~default:Budget.unlimited in
  match
    (let ucq = ucq_of_sentence phi in
     validate_schema store ucq;
     Trace.annotate [ ("terms", Ipdb_obs.Json.Int (List.length ucq)) ];
     match ucq_exact ?pool budget store ucq with
     | p ->
       Metrics.incr m_exact;
       Exact p
     | exception Unsafe why -> (
       match mc with
       | Some mc ->
         Metrics.incr m_mc;
         Trace.event "kb.query.fallback" ~attrs:[ ("why", Ipdb_obs.Json.String why) ];
         Estimated (mc_fallback budget store ucq mc)
       | None ->
         raise
           (Reject
              (Run_error.Validation
                 { what = "kb.query"; msg = Printf.sprintf "query has no safe lifted plan (%s) and no --mc-samples was given" why }))))
  with
  | outcome -> Ok outcome
  | exception Reject e -> Error e
  | exception Trip e -> Error (Run_error.Exhausted { what = "kb.query"; reason = e })

let independence ?pool ?budget store phi1 phi2 =
  Trace.with_span "kb.independence" @@ fun () ->
  let budget = Option.value budget ~default:Budget.unlimited in
  match
    let u1 = ucq_of_sentence phi1 and u2 = ucq_of_sentence phi2 in
    validate_schema store u1;
    validate_schema store u2;
    let u12 = List.concat_map (fun q1 -> List.map (fun q2 -> Pqe.conjoin_cqs [ q1; q2 ]) u2) u1 in
    let p1 = ucq_exact ?pool budget store u1 in
    let p2 = ucq_exact ?pool budget store u2 in
    let p12 = ucq_exact ?pool budget store u12 in
    (Q.equal p12 (Q.mul p1 p2), p1, p2, p12)
  with
  | r -> Ok r
  | exception Reject e -> Error e
  | exception Unsafe why ->
    Error
      (Run_error.Validation
         {
           what = "kb.independence";
           msg = Printf.sprintf "independence needs exact probabilities, but a query has no safe lifted plan (%s)" why;
         })
  | exception Trip e -> Error (Run_error.Exhausted { what = "kb.independence"; reason = e })
