module Q = Ipdb_bignum.Q
module Value = Ipdb_relational.Value
module Fact = Ipdb_relational.Fact
module Fo = Ipdb_logic.Fo
module Eval = Ipdb_logic.Eval

type cq_atom = { rel : string; args : Fo.term list }
type cq = { exists : Fo.var list; atoms : cq_atom list }

let atom_vars a =
  List.filter_map (fun t -> match t with Fo.V x -> Some x | Fo.C _ -> None) a.args

let cq_of_formula phi =
  let rec peel acc = function
    | Fo.Exists (x, f) -> peel (x :: acc) f
    | f -> (List.rev acc, f)
  in
  let exists, matrix = peel [] phi in
  let rec conjuncts = function
    | Fo.And (f, g) -> Option.bind (conjuncts f) (fun a -> Option.map (fun b -> a @ b) (conjuncts g))
    | Fo.Atom (rel, args) -> Some [ { rel; args } ]
    | Fo.True -> Some []
    | _ -> None
  in
  match conjuncts matrix with
  | None -> None
  | Some atoms ->
    let vars = List.concat_map atom_vars atoms in
    if List.for_all (fun x -> List.mem x exists) vars then Some { exists; atoms } else None

let cq_to_formula q =
  Fo.exists_many q.exists (Fo.conj (List.map (fun a -> Fo.Atom (a.rel, a.args)) q.atoms))

module SS = Set.Make (String)

let is_self_join_free q =
  let rec go seen = function
    | [] -> true
    | a :: rest -> if SS.mem a.rel seen then false else go (SS.add a.rel seen) rest
  in
  go SS.empty q.atoms

let atoms_of_var q x =
  List.filteri (fun _ a -> List.mem x (atom_vars a)) q.atoms
  |> List.map (fun a -> a.rel)
  |> List.sort_uniq String.compare

let is_hierarchical q =
  let vars = List.sort_uniq String.compare (List.concat_map atom_vars q.atoms) in
  List.for_all
    (fun x ->
      List.for_all
        (fun y ->
          let ax = SS.of_list (atoms_of_var q x) and ay = SS.of_list (atoms_of_var q y) in
          SS.subset ax ay || SS.subset ay ax || SS.is_empty (SS.inter ax ay))
        vars)
    vars

let boolean_probability_exact ti phi =
  let d = Ti.Finite.to_finite_pdb ti in
  Finite_pdb.prob_sentence d phi

(* Connected components of an atom list under shared variables; ground
   atoms come out as singleton components. *)
let components atoms =
  let rec grow comp comp_vars rest =
    let touching, others =
      List.partition (fun a -> List.exists (fun x -> SS.mem x comp_vars) (atom_vars a)) rest
    in
    if touching = [] then (comp, rest)
    else
      grow (comp @ touching)
        (List.fold_left (fun acc a -> List.fold_left (fun acc x -> SS.add x acc) acc (atom_vars a)) comp_vars touching)
        others
  in
  let rec split = function
    | [] -> []
    | a :: rest ->
      let comp, others = grow [ a ] (SS.of_list (atom_vars a)) rest in
      comp :: split others
  in
  split atoms

(* ------------------------------------------------------------------ *)
(* Extensional plan                                                    *)
(* ------------------------------------------------------------------ *)

module VS = Set.Make (Value)

let lifted_cq_probability ti q =
  if not (is_self_join_free q) then None
  else begin
    let domain =
      let s =
        List.fold_left
          (fun acc (f, _) -> List.fold_left (fun acc v -> VS.add v acc) acc (Fact.values f))
          VS.empty (Ti.Finite.facts ti)
      in
      let s =
        List.fold_left
          (fun acc a ->
            List.fold_left (fun acc t -> match t with Fo.C v -> VS.add v acc | Fo.V _ -> acc) acc a.args)
          s q.atoms
      in
      VS.elements s
    in
    let ground_atom a =
      Fact.make a.rel (List.map (fun t -> match t with Fo.C v -> v | Fo.V _ -> assert false) a.args)
    in
    let substitute_atom x v a =
      { a with args = List.map (fun t -> match t with Fo.V y when String.equal y x -> Fo.C v | t -> t) a.args }
    in
    let rec lift atoms =
      match atoms with
      | [] -> Some Q.one
      | _ -> begin
        (* split off ground atoms: independent of everything else *)
        let ground, open_atoms = List.partition (fun a -> atom_vars a = []) atoms in
        let p_ground = Q.prod (List.map (fun a -> Ti.Finite.marginal ti (ground_atom a)) ground) in
        if Q.is_zero p_ground then Some Q.zero
        else if open_atoms = [] then Some p_ground
        else begin
          match components open_atoms with
          | [] -> Some p_ground
          | [ component ] -> begin
            (* independent-project: a variable occurring in every atom *)
            let vars = List.sort_uniq String.compare (List.concat_map atom_vars component) in
            let n = List.length component in
            match
              List.find_opt (fun x -> List.length (List.filter (fun a -> List.mem x (atom_vars a)) component) = n) vars
            with
            | None -> None (* not hierarchical: unsafe for extensional rules *)
            | Some root ->
              let rec over_domain acc = function
                | [] -> Some acc
                | v :: rest -> (
                  match lift (List.map (substitute_atom root v) component) with
                  | None -> None
                  | Some p -> over_domain (Q.mul acc (Q.one_minus p)) rest)
              in
              Option.map (fun none_prob -> Q.mul p_ground (Q.one_minus none_prob)) (over_domain Q.one domain)
          end
          | comps ->
            (* independent-join across components *)
            let rec product acc = function
              | [] -> Some acc
              | comp :: rest -> (
                match lift comp with None -> None | Some p -> product (Q.mul acc p) rest)
            in
            Option.map (Q.mul p_ground) (product Q.one comps)
        end
      end
    in
    lift q.atoms
  end

(* ------------------------------------------------------------------ *)
(* Unions of conjunctive queries                                       *)
(* ------------------------------------------------------------------ *)

type ucq = cq list

let max_union_terms = 10

let cq_vars q = List.sort_uniq String.compare (List.concat_map atom_vars q.atoms)

let ucq_to_formula ucq = Fo.disj (List.map cq_to_formula ucq)

let rename_atom_var x y a =
  { a with args = List.map (function Fo.V z when String.equal z x -> Fo.V y | t -> t) a.args }

let freshen taken stem =
  let rec go i =
    let v = Printf.sprintf "%s#%d" stem i in
    if SS.mem v taken then go (i + 1) else v
  in
  go 0

(* Rename each bound variable of [q] that lies in [avoid]; fresh names
   steer clear of [taken]. Within a CQ a name in [exists] binds all its
   occurrences, so renaming every occurrence is capture-free. *)
let rename_bound_avoiding q avoid taken =
  List.fold_left
    (fun (q, taken) x ->
      if SS.mem x avoid then begin
        let y = freshen taken x in
        ( {
            exists = List.map (fun z -> if String.equal z x then y else z) q.exists;
            atoms = List.map (rename_atom_var x y) q.atoms;
          },
          SS.add y taken )
      end
      else (q, taken))
    (q, taken) q.exists

(* Conjunction of two CQs with bound variables renamed apart; free
   variables stay shared (they refer to binders in the context). *)
let conj2 q1 q2 =
  let v1 = SS.of_list (cq_vars q1 @ q1.exists) in
  let v2 = SS.of_list (cq_vars q2 @ q2.exists) in
  let taken = SS.union v1 v2 in
  let q1, taken = rename_bound_avoiding q1 v2 taken in
  let v1' = SS.of_list (cq_vars q1 @ q1.exists) in
  let q2, _ = rename_bound_avoiding q2 v1' taken in
  { exists = q1.exists @ q2.exists; atoms = q1.atoms @ q2.atoms }

let conjoin_cqs = function
  | [] -> { exists = []; atoms = [] }
  | q :: rest -> List.fold_left conj2 q rest

let ucq_of_formula phi =
  if not (Fo.is_sentence phi) then None
  else begin
    let gate = 64 in
    (* [go] keeps the invariant that a CQ's [exists] lists the variables
       bound inside the subformula; the remaining atom variables are free
       and shared with the enclosing context. *)
    let rec go phi =
      match phi with
      | Fo.True -> Some [ { exists = []; atoms = [] } ]
      | Fo.False -> Some []
      | Fo.Atom (rel, args) -> Some [ { exists = []; atoms = [ { rel; args } ] } ]
      | Fo.Or (f, g) -> two f g (fun a b -> a @ b)
      | Fo.And (f, g) -> two f g (fun a b -> List.concat_map (fun q1 -> List.map (conj2 q1) b) a)
      | Fo.Exists (x, f) ->
        Option.map
          (List.map (fun q ->
               if List.mem x q.exists || not (List.mem x (cq_vars q)) then q
               else { q with exists = x :: q.exists }))
          (go f)
      | _ -> None
    and two f g k =
      match (go f, go g) with
      | Some a, Some b ->
        let r = k a b in
        if List.length r > gate then None else Some r
      | _ -> None
    in
    match go phi with
    | Some cqs when List.for_all (fun q -> List.for_all (fun x -> List.mem x q.exists) (cq_vars q)) cqs
      -> Some cqs
    | _ -> None
  end

(* Canonical serialisation of one connected component: atoms stably
   sorted by a name-free skeleton, variables renumbered by first
   occurrence. Renamed-apart copies of one CQ share relative atom order
   and an order-preserving variable map, so they canonicalise equal. *)
let canon_component atoms =
  let skeleton a =
    a.rel ^ "("
    ^ String.concat "," (List.map (function Fo.C v -> "c:" ^ Value.to_string v | Fo.V _ -> "?") a.args)
    ^ ")"
  in
  let atoms = List.stable_sort (fun a b -> compare (skeleton a) (skeleton b)) atoms in
  let map = Hashtbl.create 8 in
  let next = ref 0 in
  let arg = function
    | Fo.C v -> "c:" ^ Value.to_string v
    | Fo.V x -> (
      match Hashtbl.find_opt map x with
      | Some i -> Printf.sprintf "v%d" i
      | None ->
        let i = !next in
        incr next;
        Hashtbl.add map x i;
        Printf.sprintf "v%d" i)
  in
  String.concat "&" (List.map (fun a -> a.rel ^ "(" ^ String.concat "," (List.map arg a.args) ^ ")") atoms)

let canon_cq q =
  String.concat "|" (List.sort compare (List.map canon_component (components q.atoms)))

(* Drop duplicate atoms and duplicate-up-to-renaming components:
   [P(C ∧ C') = P(C)] when [C'] is a variable renaming of [C], which is
   exactly what inclusion–exclusion conjunctions of overlapping union
   terms produce. *)
let normalize_closed_cq q =
  let atoms = List.sort_uniq compare q.atoms in
  let seen = Hashtbl.create 8 in
  let comps =
    List.filter
      (fun c ->
        let k = canon_component c in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (components atoms)
  in
  let atoms = List.concat comps in
  let vars = List.sort_uniq String.compare (List.concat_map atom_vars atoms) in
  { exists = List.filter (fun x -> List.mem x vars) q.exists; atoms }

let dedupe_ucq ucq =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun q ->
      let k = canon_cq (normalize_closed_cq q) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    ucq

let lifted_ucq_probability ti ucq =
  let ucq = dedupe_ucq ucq in
  let k = List.length ucq in
  if k = 0 then Some Q.zero
  else if k > max_union_terms then None
  else begin
    let cqs = Array.of_list ucq in
    let rec over_masks mask acc =
      if mask = 1 lsl k then Some acc
      else begin
        let sel = List.filter_map (fun i -> if mask land (1 lsl i) <> 0 then Some cqs.(i) else None)
            (List.init k Fun.id)
        in
        let conj = normalize_closed_cq (conjoin_cqs sel) in
        match lifted_cq_probability ti conj with
        | None -> None
        | Some p ->
          let odd = ref false in
          let m = ref mask in
          while !m <> 0 do
            if !m land 1 = 1 then odd := not !odd;
            m := !m lsr 1
          done;
          over_masks (mask + 1) (if !odd then Q.add acc p else Q.sub acc p)
      end
    in
    over_masks 1 Q.zero
  end
