(** Content-addressed verdict/marginal cache.

    Entries are keyed by the FNV-1a/64 content address of the canonical
    {!Ipdb_pdb.Serialize.canonical_key} bytes of a (family, query,
    precision) request, with the full preimage stored alongside the
    response so an address collision degrades to a miss, never to a wrong
    answer. Repeated traffic is O(hash): the daemon answers a hit with the
    exact cached response bytes, so a cached answer is byte-identical to
    the fresh computation that produced it (asserted end-to-end by
    [test/serve_crash.sh]).

    The cache is domain-safe (one mutex) and durable on demand:
    {!checkpoint} persists a versioned snapshot through
    {!Ipdb_run.Checkpoint} (atomic temp+fsync+rename via [Ioutil]), and
    {!load} refuses snapshots written by a different cache format version
    — mixed-version replay fails loudly instead of mysteriously. *)

type t

val format_version : string
(** The snapshot format tag (["ipdbsc1"]), printed by [ipdb version]. *)

val create : unit -> t

val address : string -> string
(** The content address of a key: FNV-1a/64 of the canonical bytes, as 16
    hex digits. *)

val find : t -> key:string -> string option
(** Cached response payload for a canonical key, if present (and the
    stored preimage matches — a colliding address is a miss). Records a
    hit/miss metric either way. *)

val put : t -> key:string -> string -> unit
(** Insert or overwrite the response payload for a key. *)

val size : t -> int
val hits : t -> int
val misses : t -> int

val entries : t -> (string * string) list
(** All (key, response) pairs, sorted by content address — the order
    {!to_string} serializes them in. Used to merge a shipped snapshot
    into a follower's live cache. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Versioned snapshot encoding (first line is {!format_version}); the
    decoder rejects other versions and damaged entries with a diagnostic. *)

val checkpoint : t -> path:string -> (unit, Ipdb_run.Error.t) result
(** Atomically persist a snapshot ({!Ipdb_run.Checkpoint} framing: temp
    file + fsync + rename + checksummed header). *)

val load : path:string -> (t, Ipdb_run.Error.t) result
(** Load a snapshot; a missing file is an empty cache. Damage or a
    format-version mismatch is a typed [Error], never a silent reset. *)
