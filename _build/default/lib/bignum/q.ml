type t = { num : Zint.t; den : Nat.t }
(* Invariant: den > 0, gcd(|num|, den) = 1, and num = 0 implies den = 1. *)

let make_normalized num den =
  (* den : Nat.t, nonzero *)
  if Zint.is_zero num then { num = Zint.zero; den = Nat.one }
  else begin
    let g = Nat.gcd (Zint.to_nat num) den in
    if Nat.is_one g then { num; den }
    else begin
      let reduced = Zint.of_nat (Nat.div (Zint.to_nat num) g) in
      { num = (if Zint.is_negative num then Zint.neg reduced else reduced); den = Nat.div den g }
    end
  end

let make num den =
  if Zint.is_zero den then raise Division_by_zero;
  let num = if Zint.is_negative den then Zint.neg num else num in
  make_normalized num (Zint.to_nat den)

let zero = { num = Zint.zero; den = Nat.one }
let one = { num = Zint.one; den = Nat.one }
let two = { num = Zint.of_int 2; den = Nat.one }
let half = { num = Zint.one; den = Nat.two }
let minus_one = { num = Zint.minus_one; den = Nat.one }
let of_int n = { num = Zint.of_int n; den = Nat.one }
let of_ints a b = make (Zint.of_int a) (Zint.of_int b)
let of_zint z = { num = z; den = Nat.one }
let of_nat n = { num = Zint.of_nat n; den = Nat.one }
let num q = q.num
let den q = q.den
let sign q = Zint.sign q.num
let is_zero q = Zint.is_zero q.num
let is_one q = Zint.equal q.num Zint.one && Nat.is_one q.den
let is_integer q = Nat.is_one q.den
let equal a b = Zint.equal a.num b.num && Nat.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den *)
  Zint.compare (Zint.mul a.num (Zint.of_nat b.den)) (Zint.mul b.num (Zint.of_nat a.den))

let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b
let is_probability q = sign q >= 0 && leq q one
let hash q = Hashtbl.hash (Zint.hash q.num, Nat.hash q.den)
let neg q = { q with num = Zint.neg q.num }
let abs q = { q with num = Zint.abs q.num }

let add a b =
  let num = Zint.add (Zint.mul a.num (Zint.of_nat b.den)) (Zint.mul b.num (Zint.of_nat a.den)) in
  make_normalized num (Nat.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make_normalized (Zint.mul a.num b.num) (Nat.mul a.den b.den)

let inv q =
  if is_zero q then raise Division_by_zero;
  let den_as_num = Zint.of_nat q.den in
  if Zint.is_negative q.num then { num = Zint.neg den_as_num; den = Zint.to_nat q.num }
  else { num = den_as_num; den = Zint.to_nat q.num }

let div a b = mul a (inv b)

let pow q k =
  if k >= 0 then { num = Zint.pow q.num k; den = Nat.pow q.den k } else inv { num = Zint.pow q.num (-k); den = Nat.pow q.den (-k) }

let one_minus q = sub one q
let sum qs = List.fold_left add zero qs
let prod qs = List.fold_left mul one qs
let mediant a b = make (Zint.add a.num b.num) (Zint.add (Zint.of_nat a.den) (Zint.of_nat b.den))

let to_float q =
  (* Scale-aware conversion: huge numerators/denominators must not overflow
     to inf/inf. *)
  let mn, en = Nat.frexp (Zint.to_nat q.num) in
  let md, ed = Nat.frexp q.den in
  if mn = 0.0 then 0.0
  else begin
    let v = Float.ldexp (mn /. md) (en - ed) in
    if Zint.is_negative q.num then -.v else v
  end

let to_string q = if is_integer q then Zint.to_string q.num else Zint.to_string q.num ^ "/" ^ Nat.to_string q.den

let to_decimal_string ?(digits = 12) q =
  let neg_sign = sign q < 0 in
  let n = Zint.to_nat q.num in
  let ip, rest = Nat.divmod n q.den in
  let scaled = Nat.mul rest (Nat.pow Nat.ten digits) in
  let frac = Nat.div scaled q.den in
  let frac_str = Nat.to_string frac in
  let frac_str = String.make (Stdlib.max 0 (digits - String.length frac_str)) '0' ^ frac_str in
  Printf.sprintf "%s%s.%s" (if neg_sign then "-" else "") (Nat.to_string ip) frac_str

let of_float_exact f =
  if not (Float.is_finite f) then invalid_arg "Q.of_float_exact: not finite";
  let m, e = Float.frexp f in
  (* m * 2^53 is an integer for finite doubles. *)
  let mi = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
  let e = e - 53 in
  let mag = of_zint (Zint.of_int mi) in
  if e >= 0 then mul mag (of_zint (Zint.of_nat (Nat.shift_left Nat.one e)))
  else div mag (of_zint (Zint.of_nat (Nat.shift_left Nat.one (-e))))

let of_string s =
  let s = String.trim s in
  match String.index_opt s '/' with
  | Some i ->
    let a = Zint.of_string (String.sub s 0 i) in
    let b = Zint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None -> (
    match String.index_opt s '.' with
    | None -> of_zint (Zint.of_string s)
    | Some i ->
      let ip = String.sub s 0 i in
      let fp = String.sub s (i + 1) (String.length s - i - 1) in
      let neg_sign = String.length ip > 0 && ip.[0] = '-' in
      let ipq = of_zint (Zint.of_string (if ip = "" || ip = "-" || ip = "+" then ip ^ "0" else ip)) in
      let fpq =
        if fp = "" then zero
        else make (Zint.of_nat (Nat.of_string fp)) (Zint.of_nat (Nat.pow Nat.ten (String.length fp)))
      in
      if neg_sign then sub ipq fpq else add ipq fpq)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
end

let pp fmt q = Format.pp_print_string fmt (to_string q)
