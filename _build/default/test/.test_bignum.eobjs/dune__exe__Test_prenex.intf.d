test/test_prenex.mli:
