type term = int -> float

(* 4-ulps-ish relative slack used when validating pointwise hypotheses.
   Multiplying by the constant 2^-48 is bit-identical to
   [Float.ldexp _ (-48)] (both are correctly rounded images of the same
   real number) but allocation-free in the per-term loops, where the
   cross-module [ldexp]/[Float.max] calls used to box every operand. On a
   NaN argument this returns a finite junk value where the old expression
   returned NaN; every use site compares [_ +. slack]/[_ -. slack] against
   a term, and comparisons against NaN operands are false either way, so
   the decisions are unchanged. *)
let ulp_slack x =
  let ax = Float.abs x in
  (if ax > Float.min_float then ax else Float.min_float) *. 0x1p-48

module Tail = struct
  type t =
    | Finite_support of { last : int }
    | Geometric of { index : int; first : float; ratio : float }
    | P_series of { index : int; coeff : float; p : float }
    | Exponential of { index : int; coeff : float; rate : float }

  let start_index = function
    | Finite_support _ -> min_int
    | Geometric { index; _ } | P_series { index; _ } | Exponential { index; _ } -> index

  let bound_from t n =
    if n < start_index t && start_index t > min_int then
      invalid_arg "Series.Tail.bound_from: index precedes certificate";
    match t with
    | Finite_support { last } -> if n > last then 0.0 else invalid_arg "Series.Tail.bound_from: support not exhausted"
    | Geometric { index; first; ratio } ->
      (* sum_{k>=n} first*ratio^(k-index) = first*ratio^(n-index)/(1-ratio) *)
      first *. (ratio ** float_of_int (n - index)) /. (1.0 -. ratio)
    | P_series { coeff; p; _ } ->
      (* integral test: sum_{k>=n} coeff/k^p <= coeff * ( n^-p + (n)^(1-p)/(p-1) ) *)
      let nf = float_of_int n in
      coeff *. ((nf ** -.p) +. ((nf ** (1.0 -. p)) /. (p -. 1.0)))
    | Exponential { coeff; rate; _ } ->
      coeff *. (rate ** float_of_int n) /. (1.0 -. rate)

  let pointwise_bound t n =
    match t with
    | Finite_support { last } -> if n > last then 0.0 else Float.infinity
    | Geometric { index; first; ratio } -> first *. (ratio ** float_of_int (n - index))
    | P_series { coeff; p; _ } -> coeff /. (float_of_int n ** p)
    | Exponential { coeff; rate; _ } -> coeff *. (rate ** float_of_int n)

  let params_ok = function
    | Finite_support _ -> Ok ()
    | Geometric { first; ratio; _ } ->
      if ratio >= 0.0 && ratio < 1.0 && first >= 0.0 then Ok ()
      else Error "Geometric: need 0 <= ratio < 1 and first >= 0"
    | P_series { coeff; p; index } ->
      if p > 1.0 && coeff >= 0.0 && index >= 1 then Ok ()
      else Error "P_series: need p > 1, coeff >= 0, index >= 1"
    | Exponential { coeff; rate; _ } ->
      if rate >= 0.0 && rate < 1.0 && coeff >= 0.0 then Ok ()
      else Error "Exponential: need 0 <= rate < 1 and coeff >= 0"

  let validate t f ~from_index ~upto =
    match params_ok t with
    | Error _ as e -> e
    | Ok () ->
      let lo = Stdlib.max from_index (Stdlib.max (start_index t) from_index) in
      let rec go n =
        if n > upto then Ok ()
        else begin
          let a = f n in
          if a < 0.0 then Error (Printf.sprintf "term %d is negative (%g)" n a)
          else begin
            let b = pointwise_bound t n in
            if a <= b +. ulp_slack b then go (n + 1)
            else Error (Printf.sprintf "term %d = %g exceeds certified bound %g" n a b)
          end
        end
      in
      go lo

  let pp fmt = function
    | Finite_support { last } -> Format.fprintf fmt "finite support (last=%d)" last
    | Geometric { index; first; ratio } -> Format.fprintf fmt "geometric from %d: %g * %g^(n-%d)" index first ratio index
    | P_series { index; coeff; p } -> Format.fprintf fmt "p-series from %d: %g / n^%g" index coeff p
    | Exponential { index; coeff; rate } -> Format.fprintf fmt "exponential from %d: %g * %g^n" index coeff rate
end

module Divergence = struct
  type t =
    | Harmonic of { index : int; coeff : float }
    | Bounded_below of { index : int; bound : float }
    | Eventually_ratio_ge_one of { index : int; floor : float }
    | Subsequence_harmonic of { index : int; pick : int -> int; coeff : float }

  let start_index = function
    | Harmonic { index; _ } | Bounded_below { index; _ } | Eventually_ratio_ge_one { index; _ } -> index
    | Subsequence_harmonic { index; pick; _ } -> pick index

  let validate t f ~upto =
    let i0 = start_index t in
    match t with
    | Harmonic { coeff; _ } ->
      if coeff <= 0.0 then Error "Harmonic: coeff must be positive"
      else begin
        let rec go n =
          if n > upto then Ok ()
          else begin
            let b = coeff /. float_of_int n in
            if f n >= b -. ulp_slack b then go (n + 1)
            else Error (Printf.sprintf "term %d = %g below harmonic minorant %g" n (f n) b)
          end
        in
        go (Stdlib.max i0 1)
      end
    | Bounded_below { bound; _ } ->
      if bound <= 0.0 then Error "Bounded_below: bound must be positive"
      else begin
        let rec go n =
          if n > upto then Ok ()
          else if f n >= bound -. ulp_slack bound then go (n + 1)
          else Error (Printf.sprintf "term %d = %g below floor %g" n (f n) bound)
        in
        go i0
      end
    | Eventually_ratio_ge_one { floor; _ } ->
      if floor <= 0.0 then Error "Eventually_ratio_ge_one: floor must be positive"
      else begin
        let rec go n =
          if n > upto then Ok ()
          else if f n < floor -. ulp_slack floor then
            Error (Printf.sprintf "term %d = %g below floor %g" n (f n) floor)
          else if n < upto && f (n + 1) < f n -. ulp_slack (f n) then
            Error (Printf.sprintf "terms decrease at %d" n)
          else go (n + 1)
        in
        go i0
      end
    | Subsequence_harmonic { index; pick; coeff } ->
      if coeff <= 0.0 then Error "Subsequence_harmonic: coeff must be positive"
      else begin
        let rec go k prev =
          let n = pick k in
          if n > upto then Ok ()
          else if n <= prev then Error (Printf.sprintf "pick not strictly increasing at %d" k)
          else begin
            let b = coeff /. float_of_int k in
            if f n >= b -. ulp_slack b then go (k + 1) n
            else Error (Printf.sprintf "term at pick %d = %d is %g, below minorant %g" k n (f n) b)
          end
        in
        go (Stdlib.max index 1) min_int
      end

  let minorant_partial_sum t n =
    match t with
    | Harmonic { index; coeff } ->
      (* sum_{k=index..n} coeff/k >= coeff * ln((n+1)/index) *)
      let i = Stdlib.max index 1 in
      if n < i then 0.0 else coeff *. log (float_of_int (n + 1) /. float_of_int i)
    | Bounded_below { index; bound } | Eventually_ratio_ge_one { index; floor = bound } ->
      if n < index then 0.0 else bound *. float_of_int (n - index + 1)
    | Subsequence_harmonic { index; pick; coeff } ->
      (* count the picks that fall below n *)
      let i = Stdlib.max index 1 in
      let rec go k acc = if pick k > n then acc else go (k + 1) (acc +. (coeff /. float_of_int k)) in
      go i 0.0

  let pp fmt = function
    | Harmonic { index; coeff } -> Format.fprintf fmt "harmonic minorant from %d: %g/n" index coeff
    | Bounded_below { index; bound } -> Format.fprintf fmt "terms >= %g from %d" bound index
    | Eventually_ratio_ge_one { index; floor } ->
      Format.fprintf fmt "nondecreasing terms >= %g from %d" floor index
    | Subsequence_harmonic { index; coeff; _ } ->
      Format.fprintf fmt "harmonic minorant %g/k along a subsequence from k=%d" coeff index
end

type verdict =
  | Converges of Interval.t
  | Diverges of { certificate : Divergence.t; partial : float; at : int }

let partial_sum ?(start = 0) f n =
  let acc = ref 0.0 in
  for k = start to n do
    acc := !acc +. f k
  done;
  !acc

let partial_sum_interval ?(start = 0) f n =
  let acc = ref Interval.zero in
  for k = start to n do
    acc := Interval.add !acc (Interval.point (f k))
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* The budgeted engine                                                  *)
(* ------------------------------------------------------------------ *)

module Budget = Ipdb_run.Budget
module Run_error = Ipdb_run.Error
module Faultinj = Ipdb_run.Faultinj
module Pool = Ipdb_par.Pool
module Chunk = Ipdb_par.Chunk
module Reduce = Ipdb_par.Reduce
module Metrics = Ipdb_obs.Metrics
module Trace = Ipdb_obs.Trace
module OJson = Ipdb_obs.Json

let m_terms = Metrics.counter "series.terms"
let m_chunks = Metrics.counter "series.chunks"
let m_widenings = Metrics.counter "series.widenings"

(* One interval accumulation with the widening counter: a "widening" is a
   fold step that strictly grew the enclosure's width (rounding slack
   picked up beyond the point terms themselves). The count depends only
   on the index-ordered fold, so it is identical for every worker count. *)
let accumulate acc a =
  let acc' = Interval.add acc (Interval.point a) in
  if Metrics.enabled () && Interval.width acc' > Interval.width acc then Metrics.incr m_widenings;
  acc'

(* Wrap an engine invocation in a trace span: records the requested
   range and engine flavour up front, and on the way out the outcome
   plus the budget steps this call consumed. Every [Error] additionally
   surfaces as an ["error"] event. When no sink is installed this is
   exactly [run ()]. *)
let traced_engine name ~pooled ~start ~upto ~budget ~outcome run =
  if not (Trace.enabled ()) then run ()
  else
    Trace.with_span name
      ~attrs:
        [ ("start", OJson.Int start);
          ("upto", OJson.Int upto);
          ("engine", OJson.String (if pooled then "pool" else "seq")) ]
      (fun () ->
        let steps0 = Budget.steps_used budget in
        let r = run () in
        (match r with
        | Ok v -> Trace.annotate [ ("outcome", OJson.String (outcome v)) ]
        | Error e ->
          Run_error.emit e;
          Trace.annotate
            [ ("outcome", OJson.String "error"); ("code", OJson.String (Run_error.code e)) ]);
        Trace.annotate [ ("steps", OJson.Int (Budget.steps_used budget - steps0)) ];
        r)

(* Pull chunks from a plan while the budget still grants their steps.
   Reservation happens here — on the single admitting domain, in chunk
   order — so the index at which a step budget exhausts depends only on
   the chunk plan and the limit, never on worker scheduling. A partial
   grant truncates the chunk to the granted steps and ends admission
   (Budget.reserve latches the trip). The first reservation failure is
   recorded in [stop]. *)
let admit_chunks ~budget ~stop plan =
  let rec admit plan () =
    if !stop <> None then Seq.Nil
    else
      match plan () with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (c, rest) -> (
          let len = Chunk.length c in
          match Budget.reserve budget len with
          | Error e ->
              stop := Some e;
              Seq.Nil
          | Ok g when g = len -> Seq.Cons (c, admit rest)
          | Ok g ->
              let c, _ = Chunk.split c g in
              (stop :=
                 match Budget.poll budget with
                 | Error e -> Some e
                 | Ok () -> (* unreachable: the partial grant latched a trip *) None);
              Seq.Cons (c, fun () -> Seq.Nil))
  in
  admit plan

(* Worker-side budget poll for chunks whose steps were reserved up front:
   an admitted chunk must run to completion under a pure step budget (or
   the stop index would depend on scheduling), so latched step exhaustion
   is ignored here; only wall-clock and cancellation cut a chunk short. *)
let poll_cut budget =
  match Budget.poll budget with
  | Ok () | Error (Run_error.Steps _) -> None
  | Error e -> Some e

(* The tight loops below are pure engine-overhead removal. They are taken
   only when every per-term hook is provably inert: the budget can never
   trip ([Budget.check] on an unlimited budget is a branch that updates
   nothing), metrics and tracing are off ([Metrics.incr] would be a
   no-op), and the term/certificate fault sites are not armed ([fire]
   would not raise). Under those conditions the instrumented loops and
   the tight loops are observationally identical: same term evaluations
   in the same order, same directed-rounding accumulation, same progress
   emission points, same snapshots, bit for bit. IPDB_ARITH_REFERENCE=1
   disqualifies them, forcing the original instrumented loops. *)
let fast_eligible budget =
  (not (Ipdb_bignum.Arith.reference ()))
  && Budget.is_unlimited budget
  && (not (Metrics.enabled ()))
  && (not (Trace.enabled ()))
  && (not (Faultinj.armed Faultinj.Term_eval))
  && not (Faultinj.armed Faultinj.Certificate)

(* Directed rounding for the tight loops, locally unboxed. Semantically
   identical to [Interval.down]/[Interval.up]: [x -. x = 0.0] is the
   allocation-free finiteness test and [Float.pred]/[Float.succ] are
   defined as [next_after] toward the corresponding infinity. Declared
   here because without flambda a cross-module call boxes its float
   argument and result — at two rounded additions per term that boxing
   dominated the accumulation loops. The metamorphic suite pins the
   equivalence by comparing fast-mode enclosures with reference-mode ones
   bit for bit. *)
external next_after : float -> float -> float = "caml_nextafter_float" "caml_nextafter"
  [@@unboxed] [@@noalloc]

let[@inline] round_down x = if x -. x = 0.0 then next_after x Float.neg_infinity else x
let[@inline] round_up x = if x -. x = 0.0 then next_after x Float.infinity else x

(* Index-ordered fold of [accumulate] over a chunk's terms with the
   endpoints kept in local refs (the instrumented path allocates one
   interval per term). Same additions, same [down]/[up] rounding, so the
   resulting interval is bit-identical to [Array.fold_left accumulate]. *)
let fold_terms_fast acc arr =
  let lo = ref (Interval.lo acc) and hi = ref (Interval.hi acc) in
  for j = 0 to Array.length arr - 1 do
    let a = Array.unsafe_get arr j in
    lo := round_down (!lo +. a);
    hi := round_up (!hi +. a)
  done;
  Interval.make !lo !hi

(* Recycling pool for chunk term buffers. A worker pops a buffer (or
   allocates on miss), fills every slot it reports, and the admitting
   domain returns it after folding — so a run keeps a handful of live
   buffers instead of churning one major-heap array per chunk (each array
   is chunk-sized, well past the minor-alloc cutoff, and the churn showed
   up as dozens of major collections per run). Only full-size buffers are
   recycled; the odd-sized final chunk's buffer is simply dropped. The
   Treiber-stack handoff publishes the buffer contents between domains. *)
type 'a buf_pool = { bufs : 'a array list Atomic.t; want : int; blank : 'a }

let buf_pool_make want blank = { bufs = Atomic.make []; want; blank }

let rec buf_take p len =
  if len <> p.want then Array.make len p.blank
  else
    match Atomic.get p.bufs with
    | [] -> Array.make len p.blank
    | (b :: rest) as old ->
      if Atomic.compare_and_set p.bufs old rest then b else buf_take p len

let rec buf_give p b =
  if Array.length b = p.want then begin
    let old = Atomic.get p.bufs in
    if not (Atomic.compare_and_set p.bufs old (b :: old)) then buf_give p b
  end

type partial = {
  enclosure : Interval.t option;
  prefix : Interval.t;
  last : int;
  requested : int;
  exhausted : Run_error.exhaustion;
}

type budgeted =
  | Complete of Interval.t
  | Exhausted of partial

(* Non-raising variant of [Tail.bound_from]: [None] when the certificate
   cannot bound the tail at [n] (finite support not yet exhausted, index
   before the certificate's start, or a non-finite bound). *)
let tail_bound_opt tail n =
  match tail with
  | Tail.Finite_support { last } -> if n > last then Some 0.0 else None
  | _ ->
    if n < Tail.start_index tail then None
    else begin
      let b = Tail.bound_from tail n in
      if Float.is_nan b || b < 0.0 then None else Some b
    end

let certify_divergence ?(start = 0) f ~certificate ~upto =
  ignore start;
  match Divergence.validate certificate f ~upto with
  | Error _ as e -> e
  | Ok () -> Ok (Diverges { certificate; partial = partial_sum ~start:(Divergence.start_index certificate) f upto; at = upto })

type divergence_budgeted =
  | Div_complete of { partial : float; at : int }
  | Div_exhausted of { partial : float; minorant : float; last : int; requested : int; exhausted : Run_error.exhaustion }

exception Stop of Run_error.exhaustion

let certify_divergence_budgeted ?(start = 0) ?(budget = Budget.unlimited) f ~certificate ~upto =
  ignore start;
  traced_engine "series.divergence" ~pooled:false
    ~start:(Divergence.start_index certificate) ~upto ~budget
    ~outcome:(function Div_complete _ -> "complete" | Div_exhausted _ -> "exhausted")
  @@ fun () ->
  (* The minorant checkers have four different traversal orders; rather than
     fusing a budget into each, the term function itself is instrumented:
     it pays one budget step per evaluation and accumulates each distinct
     index's term into the witness partial sum. *)
  let acc = ref 0.0 in
  let seen = ref min_int in
  let wrapped n =
    (match Budget.check budget with Error reason -> raise (Stop reason) | Ok () -> ());
    Metrics.incr m_terms;
    Faultinj.fire Faultinj.Term_eval;
    let a = f n in
    if n > !seen then begin
      seen := n;
      if not (Float.is_nan a) then acc := !acc +. a
    end;
    a
  in
  match Divergence.validate certificate wrapped ~upto with
  | exception Stop exhausted ->
    let last = if !seen = min_int then Divergence.start_index certificate - 1 else !seen in
    Ok
      (Div_exhausted
         {
           partial = !acc;
           minorant = Divergence.minorant_partial_sum certificate (Stdlib.max last 0);
           last;
           requested = upto;
           exhausted;
         })
  | exception Faultinj.Injected site -> Error (Run_error.Injected_fault { site = Faultinj.site_name site })
  | exception e ->
    Error (Run_error.Certificate { what = "divergence certificate"; msg = "term evaluation raised " ^ Printexc.to_string e })
  | Error msg -> Error (Run_error.Certificate { what = "divergence certificate"; msg })
  | Ok () -> Ok (Div_complete { partial = !acc; at = upto })

(* ------------------------------------------------------------------ *)
(* Snapshots and resumable engines                                      *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  module Q = Ipdb_bignum.Q

  (* Floats are persisted as exact rationals (plus tokens for the
     non-rational values), so a decode . encode roundtrip is the identity
     on bits and resumed runs reproduce one-shot enclosures exactly. *)
  let encode_float x =
    if Float.is_nan x then "nan"
    else if x = Float.infinity then "inf"
    else if x = Float.neg_infinity then "-inf"
    else if x = 0.0 && 1.0 /. x < 0.0 then "-0"
    else Q.to_string (Q.of_float_exact x)

  let decode_float s =
    match s with
    | "nan" -> Ok Float.nan
    | "inf" -> Ok Float.infinity
    | "-inf" -> Ok Float.neg_infinity
    | "-0" -> Ok (-0.0)
    | _ -> (
        match Q.of_string s with
        | q -> Ok (Q.to_float q)
        | exception Invalid_argument m ->
            Error (Printf.sprintf "unparsable rational %S: %s" s m)
        | exception _ -> Error (Printf.sprintf "unparsable rational %S" s))

  let float_equal_bits a b = Int64.bits_of_float a = Int64.bits_of_float b

  type sum_state = { sum_start : int; next : int; prefix : Interval.t }

  type div_state = {
    div_start : int;
    next_k : int;
    partial : float;
    prev_term : float option;
    prev_pick : int;
  }

  type t = Sum_state of sum_state | Div_state of div_state

  let to_string = function
    | Sum_state { sum_start; next; prefix } ->
        Printf.sprintf "sum %d %d %s %s" sum_start next
          (encode_float (Interval.lo prefix))
          (encode_float (Interval.hi prefix))
    | Div_state { div_start; next_k; partial; prev_term; prev_pick } ->
        Printf.sprintf "div %d %d %s %s %d" div_start next_k
          (encode_float partial)
          (match prev_term with None -> "_" | Some x -> encode_float x)
          prev_pick

  let ( let* ) = Result.bind

  let int_field name s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "unparsable %s %S" name s)

  let of_string s =
    match String.split_on_char ' ' (String.trim s) with
    | [ "sum"; start_s; next_s; lo_s; hi_s ] ->
        let* sum_start = int_field "start index" start_s in
        let* next = int_field "next index" next_s in
        let* lo = decode_float lo_s in
        let* hi = decode_float hi_s in
        if Float.is_nan lo || Float.is_nan hi || lo > hi then
          Error "prefix endpoints do not form an interval"
        else Ok (Sum_state { sum_start; next; prefix = Interval.make lo hi })
    | [ "div"; start_s; next_s; partial_s; prev_s; pick_s ] ->
        let* div_start = int_field "start index" start_s in
        let* next_k = int_field "next index" next_s in
        let* partial = decode_float partial_s in
        let* prev_term =
          if prev_s = "_" then Ok None
          else Result.map Option.some (decode_float prev_s)
        in
        let* prev_pick = int_field "previous pick" pick_s in
        Ok (Div_state { div_start; next_k; partial; prev_term; prev_pick })
    | kind :: _ when kind <> "sum" && kind <> "div" ->
        Error (Printf.sprintf "unknown snapshot kind %S" kind)
    | _ -> Error "wrong number of snapshot fields"

  let equal a b =
    match (a, b) with
    | Sum_state x, Sum_state y ->
        x.sum_start = y.sum_start && x.next = y.next
        && float_equal_bits (Interval.lo x.prefix) (Interval.lo y.prefix)
        && float_equal_bits (Interval.hi x.prefix) (Interval.hi y.prefix)
    | Div_state x, Div_state y ->
        x.div_start = y.div_start && x.next_k = y.next_k
        && float_equal_bits x.partial y.partial
        && x.prev_pick = y.prev_pick
        && (match (x.prev_term, y.prev_term) with
           | None, None -> true
           | Some a, Some b -> float_equal_bits a b
           | _ -> false)
    | _ -> false

  let pp fmt t =
    match t with
    | Sum_state { sum_start; next; prefix } ->
        Format.fprintf fmt "sum snapshot: start=%d next=%d prefix=%a" sum_start
          next Interval.pp prefix
    | Div_state { div_start; next_k; partial; _ } ->
        Format.fprintf fmt "divergence snapshot: start=%d next=%d partial=%.17g"
          div_start next_k partial
end

let snapshot_mismatch msg = Error (Run_error.Validation { what = "snapshot"; msg })

let sum_resumable ?pool ?chunk ?(start = 0) ?(budget = Budget.unlimited) ?from ?progress
    ?(progress_every = 1000) f ~tail ~upto =
  traced_engine "series.sum" ~pooled:(Option.is_some pool) ~start ~upto ~budget
    ~outcome:(function Complete _, _ -> "complete" | Exhausted _, _ -> "exhausted")
  @@ fun () ->
  match Tail.params_ok tail with
  | Error msg -> Error (Run_error.Certificate { what = "tail certificate"; msg })
  | Ok () -> (
    let init =
      match from with
      | None -> Ok (start, Interval.zero)
      | Some (Snapshot.Sum_state s) ->
        if s.sum_start <> start then
          snapshot_mismatch
            (Printf.sprintf "snapshot starts at %d, computation at %d" s.sum_start start)
        else if s.next < start || s.next > upto + 1 then
          snapshot_mismatch
            (Printf.sprintf "snapshot resume index %d outside %d..%d" s.next start (upto + 1))
        else Ok (s.next, s.prefix)
      | Some (Snapshot.Div_state _) ->
        snapshot_mismatch "divergence snapshot given to a summation"
    in
    match init with
    | Error _ as e -> e
    | Ok (n0, acc0) ->
      let snapshot n acc = Snapshot.Sum_state { sum_start = start; next = n; prefix = acc } in
      let check_from = Stdlib.max start (Tail.start_index tail) in
      let fast = fast_eligible budget in
      let eval =
        if fast then f
        else fun n ->
          Metrics.incr m_terms;
          Faultinj.fire Faultinj.Term_eval;
          f n
      in
      let validate =
        if fast then fun n a ->
          if n < check_from then Ok ()
          else begin
            let b = Tail.pointwise_bound tail n in
            if a <= b +. ulp_slack b then Ok ()
            else Error (Printf.sprintf "term %d = %g exceeds certified bound %g" n a b)
          end
        else fun n a ->
          if n < check_from then Ok ()
          else begin
            Faultinj.fire Faultinj.Certificate;
            let b = Tail.pointwise_bound tail n in
            if a <= b +. ulp_slack b then Ok ()
            else Error (Printf.sprintf "term %d = %g exceeds certified bound %g" n a b)
          end
      in
      let stop acc last exhausted =
        let enclosure =
          match tail_bound_opt tail (last + 1) with
          | Some b -> Some (Interval.add acc (Interval.make 0.0 b))
          | None -> None
        in
        Ok
          ( Exhausted { enclosure; prefix = acc; last; requested = upto; exhausted },
            snapshot (last + 1) acc )
      in
      let tick n acc =
        match progress with
        | Some emit when (n - n0) mod progress_every = 0 -> emit (snapshot n acc)
        | _ -> ()
      in
      let rec go n acc =
        if n > upto then begin
          match tail_bound_opt tail (upto + 1) with
          | Some b -> Ok (Complete (Interval.add acc (Interval.make 0.0 b)), snapshot n acc)
          | None ->
            Error
              (Run_error.Certificate
                 { what = "tail certificate"; msg = "no tail bound at the cutoff (finite support not exhausted?)" })
        end
        else begin
          match Budget.check budget with
          | Error exhausted -> stop acc (n - 1) exhausted
          | Ok () -> (
            match eval n with
            | exception Faultinj.Injected site ->
              Error (Run_error.Injected_fault { site = Faultinj.site_name site })
            | exception e ->
              Error
                (Run_error.Certificate
                   { what = Printf.sprintf "term %d" n; msg = "term evaluation raised " ^ Printexc.to_string e })
            | a ->
              if Float.is_nan a || a < 0.0 then
                Error
                  (Run_error.Certificate
                     { what = Printf.sprintf "term %d" n; msg = Printf.sprintf "term is not a non-negative number (%g)" a })
              else begin
                match validate n a with
                | exception Faultinj.Injected site ->
                  Error (Run_error.Injected_fault { site = Faultinj.site_name site })
                | Error msg -> Error (Run_error.Certificate { what = "tail certificate"; msg })
                | Ok () ->
                  let acc = accumulate acc a in
                  tick (n + 1) acc;
                  go (n + 1) acc
              end)
        end
      in
      (* Tight sequential loop: same traversal, same checks, same rounding
         and emission points as [go], with the per-term hooks elided (they
         are inert under [fast]) and the enclosure endpoints carried as
         plain floats instead of one interval allocation per term. *)
      let go_fast n0 acc0 =
        let rec loop n lo hi =
          if n > upto then begin
            let acc = Interval.make lo hi in
            match tail_bound_opt tail (upto + 1) with
            | Some b -> Ok (Complete (Interval.add acc (Interval.make 0.0 b)), snapshot n acc)
            | None ->
              Error
                (Run_error.Certificate
                   { what = "tail certificate"; msg = "no tail bound at the cutoff (finite support not exhausted?)" })
          end
          else begin
            match f n with
            | exception Faultinj.Injected site ->
              Error (Run_error.Injected_fault { site = Faultinj.site_name site })
            | exception e ->
              Error
                (Run_error.Certificate
                   { what = Printf.sprintf "term %d" n; msg = "term evaluation raised " ^ Printexc.to_string e })
            | a ->
              if Float.is_nan a || a < 0.0 then
                Error
                  (Run_error.Certificate
                     { what = Printf.sprintf "term %d" n; msg = Printf.sprintf "term is not a non-negative number (%g)" a })
              else begin
                match validate n a with
                | Error msg -> Error (Run_error.Certificate { what = "tail certificate"; msg })
                | Ok () ->
                  let lo = round_down (lo +. a) and hi = round_up (hi +. a) in
                  (match progress with
                  | Some emit when (n + 1 - n0) mod progress_every = 0 ->
                    emit (snapshot (n + 1) (Interval.make lo hi))
                  | _ -> ());
                  loop (n + 1) lo hi
              end
          end
        in
        loop n0 (Interval.lo acc0) (Interval.hi acc0)
      in
      match pool with
      | None -> if fast then go_fast n0 acc0 else go n0 acc0
      | Some pool ->
        (* Chunked parallel engine. Workers evaluate and validate terms
           into per-chunk arrays; the interval fold below replays them
           strictly in index order, so a completed run is bit-identical
           to [go n0 acc0] for any worker count. *)
        let size = match chunk with Some s -> Stdlib.max 1 s | None -> Chunk.default_size in
        let admit_stop = ref None in
        let bufs = buf_pool_make size 0.0 in
        let chunks = admit_chunks ~budget ~stop:admit_stop (Chunk.plan ~size ~start:n0 ~upto ()) in
        let run_chunk (c : Chunk.t) =
          Metrics.incr m_chunks;
          Trace.with_span "series.chunk"
            ~attrs:[ ("lo", OJson.Int c.Chunk.lo); ("hi", OJson.Int c.Chunk.hi) ]
          @@ fun () ->
          let arr = buf_take bufs (Chunk.length c) in
          let rec at n =
            if n > c.Chunk.hi then `Terms arr
            else begin
              match (if (not fast) && (n - c.Chunk.lo) land 15 = 0 then poll_cut budget else None) with
              | Some exh -> `Cut exh
              | None -> (
                match eval n with
                | exception Faultinj.Injected site ->
                  `Fail (Run_error.Injected_fault { site = Faultinj.site_name site })
                | exception e ->
                  `Fail
                    (Run_error.Certificate
                       { what = Printf.sprintf "term %d" n; msg = "term evaluation raised " ^ Printexc.to_string e })
                | a ->
                  if Float.is_nan a || a < 0.0 then
                    `Fail
                      (Run_error.Certificate
                         { what = Printf.sprintf "term %d" n; msg = Printf.sprintf "term is not a non-negative number (%g)" a })
                  else begin
                    match validate n a with
                    | exception Faultinj.Injected site ->
                      `Fail (Run_error.Injected_fault { site = Faultinj.site_name site })
                    | Error msg -> `Fail (Run_error.Certificate { what = "tail certificate"; msg })
                    | Ok () ->
                      arr.(n - c.Chunk.lo) <- a;
                      at (n + 1)
                  end)
            end
          in
          (c, at c.Chunk.lo)
        in
        let fold (acc, next, emitted) (c, outcome) =
          match outcome with
          | `Fail e -> Error (`Fail e)
          | `Cut exh -> Error (`Cut (acc, next, exh))
          | `Terms arr ->
            let acc = if fast then fold_terms_fast acc arr else Array.fold_left accumulate acc arr in
            buf_give bufs arr;
            let next = c.Chunk.hi + 1 in
            let emitted =
              match progress with
              | Some emit ->
                let due = (next - n0) / progress_every in
                if due > emitted then begin
                  emit (snapshot next acc);
                  due
                end
                else emitted
              | None -> emitted
            in
            Ok (acc, next, emitted)
        in
        (match Reduce.map_fold pool ~map:run_chunk ~fold ~init:(acc0, n0, 0) chunks with
        | Error (`Fail e) -> Error e
        | Error (`Cut (acc, next, exh)) -> stop acc (next - 1) exh
        | Ok (acc, next, _) -> (
          match !admit_stop with
          | Some exh -> stop acc (next - 1) exh
          | None -> (
            match tail_bound_opt tail (upto + 1) with
            | Some b -> Ok (Complete (Interval.add acc (Interval.make 0.0 b)), snapshot next acc)
            | None ->
              Error
                (Run_error.Certificate
                   { what = "tail certificate"; msg = "no tail bound at the cutoff (finite support not exhausted?)" })))))

let certify_divergence_resumable ?pool ?chunk ?(start = 0) ?(budget = Budget.unlimited) ?from
    ?progress ?(progress_every = 1000) f ~certificate ~upto =
  ignore start;
  traced_engine "series.divergence" ~pooled:(Option.is_some pool)
    ~start:(Divergence.start_index certificate) ~upto ~budget
    ~outcome:(function Div_complete _, _ -> "complete" | Div_exhausted _, _ -> "exhausted")
  @@ fun () ->
  (* A sequential re-implementation of [Divergence.validate]'s four
     traversals: one term evaluation and one budget step per index, with
     the cross-index context ([prev_term] for the ratio certificate,
     [prev_pick] for the subsequence one) carried explicitly so it can be
     checkpointed and restored. The witness partial sum is a left fold in
     index order, hence bit-for-bit reproducible across resumes. *)
  let param_error =
    match certificate with
    | Divergence.Harmonic { coeff; _ } when coeff <= 0.0 -> Some "Harmonic: coeff must be positive"
    | Divergence.Bounded_below { bound; _ } when bound <= 0.0 -> Some "Bounded_below: bound must be positive"
    | Divergence.Eventually_ratio_ge_one { floor; _ } when floor <= 0.0 ->
      Some "Eventually_ratio_ge_one: floor must be positive"
    | Divergence.Subsequence_harmonic { coeff; _ } when coeff <= 0.0 ->
      Some "Subsequence_harmonic: coeff must be positive"
    | _ -> None
  in
  match param_error with
  | Some msg -> Error (Run_error.Certificate { what = "divergence certificate"; msg })
  | None -> (
    let i0 =
      match certificate with
      | Divergence.Harmonic { index; _ } -> Stdlib.max index 1
      | Divergence.Bounded_below { index; _ } -> index
      | Divergence.Eventually_ratio_ge_one { index; _ } -> index
      | Divergence.Subsequence_harmonic { index; _ } -> Stdlib.max index 1
    in
    let init =
      match from with
      | None ->
        Ok Snapshot.{ div_start = i0; next_k = i0; partial = 0.0; prev_term = None; prev_pick = min_int }
      | Some (Snapshot.Div_state s) ->
        if s.Snapshot.div_start <> i0 then
          snapshot_mismatch
            (Printf.sprintf "snapshot starts at %d, certificate at %d" s.Snapshot.div_start i0)
        else if s.Snapshot.next_k < i0 then
          snapshot_mismatch
            (Printf.sprintf "snapshot resume index %d precedes certificate start %d" s.Snapshot.next_k i0)
        else Ok s
      | Some (Snapshot.Sum_state _) ->
        snapshot_mismatch "summation snapshot given to a divergence check"
    in
    match init with
    | Error _ as e -> e
    | Ok st0 ->
      let cert_error msg = Error (Run_error.Certificate { what = "divergence certificate"; msg }) in
      let snapshot k partial prev_term prev_pick =
        Snapshot.Div_state { div_start = i0; next_k = k; partial; prev_term; prev_pick }
      in
      let fast = fast_eligible budget in
      let eval =
        if fast then f
        else fun n ->
          Metrics.incr m_terms;
          Faultinj.fire Faultinj.Term_eval;
          f n
      in
      let index_of k =
        match certificate with
        | Divergence.Subsequence_harmonic { pick; _ } -> pick k
        | _ -> k
      in
      let last_evaluated k prev_pick =
        match certificate with
        | Divergence.Subsequence_harmonic _ ->
          if prev_pick = min_int then Divergence.start_index certificate - 1 else prev_pick
        | _ -> k - 1
      in
      let rec go k partial prev prev_pick =
        let n = index_of k in
        if n > upto then
          Ok (Div_complete { partial; at = upto }, snapshot k partial prev prev_pick)
        else begin
          match Budget.check budget with
          | Error exhausted ->
            let last = last_evaluated k prev_pick in
            Ok
              ( Div_exhausted
                  {
                    partial;
                    minorant = Divergence.minorant_partial_sum certificate (Stdlib.max last 0);
                    last;
                    requested = upto;
                    exhausted;
                  },
                snapshot k partial prev prev_pick )
          | Ok () -> (
            match eval n with
            | exception Faultinj.Injected site ->
              Error (Run_error.Injected_fault { site = Faultinj.site_name site })
            | exception e ->
              cert_error ("term evaluation raised " ^ Printexc.to_string e)
            | a -> (
              let verdict =
                match certificate with
                | Divergence.Harmonic { coeff; _ } ->
                  let b = coeff /. float_of_int n in
                  if a >= b -. ulp_slack b then Ok ()
                  else Error (Printf.sprintf "term %d = %g below harmonic minorant %g" n a b)
                | Divergence.Bounded_below { bound; _ } ->
                  if a >= bound -. ulp_slack bound then Ok ()
                  else Error (Printf.sprintf "term %d = %g below floor %g" n a bound)
                | Divergence.Eventually_ratio_ge_one { floor; _ } ->
                  if a < floor -. ulp_slack floor then
                    Error (Printf.sprintf "term %d = %g below floor %g" n a floor)
                  else (
                    match prev with
                    | Some p when a < p -. ulp_slack p ->
                      Error (Printf.sprintf "terms decrease at %d" (n - 1))
                    | _ -> Ok ())
                | Divergence.Subsequence_harmonic { coeff; _ } ->
                  if prev_pick <> min_int && n <= prev_pick then
                    Error (Printf.sprintf "pick not strictly increasing at %d" k)
                  else begin
                    let b = coeff /. float_of_int k in
                    if a >= b -. ulp_slack b then Ok ()
                    else Error (Printf.sprintf "term at pick %d = %d is %g, below minorant %g" k n a b)
                  end
              in
              match verdict with
              | Error msg -> cert_error msg
              | Ok () ->
                let partial = if Float.is_nan a then partial else partial +. a in
                let prev = Some a in
                (match progress with
                | Some emit when (k + 1 - st0.Snapshot.next_k) mod progress_every = 0 ->
                  emit (snapshot (k + 1) partial prev n)
                | _ -> ());
                go (k + 1) partial prev n))
        end
      in
      match pool with
      | None -> go st0.Snapshot.next_k st0.Snapshot.partial st0.Snapshot.prev_term st0.Snapshot.prev_pick
      | Some pool ->
        (* Chunked parallel engine over the loop index k. Workers evaluate
           terms and check the pointwise minorant hypotheses; the witness
           fold and the cross-index checks (ratio decrease at a chunk
           boundary, pick monotonicity) replay in k order here, mirroring
           [go]'s per-index check order exactly. *)
        let k0 = st0.Snapshot.next_k in
        let size = match chunk with Some s -> Stdlib.max 1 s | None -> Chunk.default_size in
        (* Upper bound on k: for a plain certificate the loop index is the
           term index; for a subsequence, [pick] strictly increasing means
           pick k >= pick k0 + (k - k0), so the first k with pick k > upto
           is at most k0 + (upto - pick k0) + 1. *)
        let kmax =
          match certificate with
          | Divergence.Subsequence_harmonic { pick; _ } ->
            let n_first = pick k0 in
            if n_first > upto then k0 - 1 else k0 + (upto - n_first)
          | _ -> upto
        in
        let admit_stop = ref None in
        let term_bufs = buf_pool_make size 0.0 in
        let pick_bufs = buf_pool_make size 0 in
        let chunks = admit_chunks ~budget ~stop:admit_stop (Chunk.plan ~size ~start:k0 ~upto:kmax ()) in
        let run_chunk (c : Chunk.t) =
          Metrics.incr m_chunks;
          Trace.with_span "series.chunk"
            ~attrs:[ ("lo", OJson.Int c.Chunk.lo); ("hi", OJson.Int c.Chunk.hi) ]
          @@ fun () ->
          let len = Chunk.length c in
          let terms = buf_take term_bufs len in
          let picks = buf_take pick_bufs len in
          let stop_at j s = `Stopped (j, s) in
          let rec at j =
            if j >= len then `Full
            else begin
              let k = c.Chunk.lo + j in
              let n = index_of k in
              if n > upto then stop_at j `Upto_hit
              else begin
                match (if (not fast) && j land 15 = 0 then poll_cut budget else None) with
                | Some exh -> stop_at j (`Cut exh)
                | None -> (
                  match eval n with
                  | exception Faultinj.Injected site ->
                    stop_at j (`Err (Run_error.Injected_fault { site = Faultinj.site_name site }))
                  | exception e ->
                    stop_at j
                      (`Err
                         (Run_error.Certificate
                            { what = "divergence certificate"; msg = "term evaluation raised " ^ Printexc.to_string e }))
                  | a -> (
                    let verdict =
                      match certificate with
                      | Divergence.Harmonic { coeff; _ } ->
                        let b = coeff /. float_of_int n in
                        if a >= b -. ulp_slack b then Ok ()
                        else Error (Printf.sprintf "term %d = %g below harmonic minorant %g" n a b)
                      | Divergence.Bounded_below { bound; _ } ->
                        if a >= bound -. ulp_slack bound then Ok ()
                        else Error (Printf.sprintf "term %d = %g below floor %g" n a bound)
                      | Divergence.Eventually_ratio_ge_one { floor; _ } ->
                        if a < floor -. ulp_slack floor then
                          Error (Printf.sprintf "term %d = %g below floor %g" n a floor)
                        else if j > 0 && a < terms.(j - 1) -. ulp_slack terms.(j - 1) then
                          Error (Printf.sprintf "terms decrease at %d" (n - 1))
                        else Ok ()
                      | Divergence.Subsequence_harmonic { coeff; _ } ->
                        if j > 0 && n <= picks.(j - 1) then
                          Error (Printf.sprintf "pick not strictly increasing at %d" k)
                        else begin
                          let b = coeff /. float_of_int k in
                          if a >= b -. ulp_slack b then Ok ()
                          else Error (Printf.sprintf "term at pick %d = %d is %g, below minorant %g" k n a b)
                        end
                    in
                    match verdict with
                    | Error msg -> stop_at j (`Err (Run_error.Certificate { what = "divergence certificate"; msg }))
                    | Ok () ->
                      terms.(j) <- a;
                      picks.(j) <- n;
                      at (j + 1)))
              end
            end
          in
          (c, terms, picks, at 0)
        in
        (* Merge state mirrors [go]'s accumulator exactly. *)
        let fold (partial, prev, prev_pick, k_next, emitted) (c, terms, picks, outcome) =
          let dlen = match outcome with `Full -> Chunk.length c | `Stopped (j, _) -> j in
          (* Cross-index checks on the chunk's first index, against the
             carried state — in [go]'s per-index check order. *)
          let boundary_err =
            match certificate with
            | Divergence.Eventually_ratio_ge_one _ when dlen >= 1 -> (
              match prev with
              | Some p when terms.(0) < p -. ulp_slack p ->
                Some (Printf.sprintf "terms decrease at %d" (c.Chunk.lo - 1))
              | _ -> None)
            | Divergence.Subsequence_harmonic _ when prev_pick <> min_int -> (
              let first_attempted =
                if dlen >= 1 then Some picks.(0)
                else
                  match outcome with
                  | `Stopped (0, `Err _) -> Some (index_of c.Chunk.lo)
                  | _ -> None
              in
              match first_attempted with
              | Some n when n <= prev_pick ->
                Some (Printf.sprintf "pick not strictly increasing at %d" c.Chunk.lo)
              | _ -> None)
            | _ -> None
          in
          match boundary_err with
          | Some msg -> Error (`Fail (Run_error.Certificate { what = "divergence certificate"; msg }))
          | None ->
            let partial = ref partial in
            for j = 0 to dlen - 1 do
              if not (Float.is_nan terms.(j)) then partial := !partial +. terms.(j)
            done;
            let partial = !partial in
            let prev = if dlen >= 1 then Some terms.(dlen - 1) else prev in
            let prev_pick = if dlen >= 1 then picks.(dlen - 1) else prev_pick in
            let k_next = if dlen >= 1 then c.Chunk.lo + dlen else k_next in
            let st = (partial, prev, prev_pick, k_next, emitted) in
            buf_give term_bufs terms;
            buf_give pick_bufs picks;
            (match outcome with
            | `Full ->
              let emitted =
                match progress with
                | Some emit ->
                  let due = (k_next - k0) / progress_every in
                  if due > emitted then begin
                    emit (snapshot k_next partial prev prev_pick);
                    due
                  end
                  else emitted
                | None -> emitted
              in
              Ok (partial, prev, prev_pick, k_next, emitted)
            | `Stopped (_, `Upto_hit) -> Error (`Done st)
            | `Stopped (_, `Cut exh) -> Error (`Cut (st, exh))
            | `Stopped (_, `Err e) -> Error (`Fail e))
        in
        let finish_exhausted (partial, prev, prev_pick, k_next, _) exhausted =
          let last = last_evaluated k_next prev_pick in
          Ok
            ( Div_exhausted
                {
                  partial;
                  minorant = Divergence.minorant_partial_sum certificate (Stdlib.max last 0);
                  last;
                  requested = upto;
                  exhausted;
                },
              snapshot k_next partial prev prev_pick )
        in
        let init = (st0.Snapshot.partial, st0.Snapshot.prev_term, st0.Snapshot.prev_pick, k0, 0) in
        (match Reduce.map_fold pool ~map:run_chunk ~fold ~init chunks with
        | Error (`Fail e) -> Error e
        | Error (`Cut (st, exh)) -> finish_exhausted st exh
        | Error (`Done (partial, prev, prev_pick, k_next, _)) ->
          Ok (Div_complete { partial; at = upto }, snapshot k_next partial prev prev_pick)
        | Ok ((partial, prev, prev_pick, k_next, _) as st) -> (
          match !admit_stop with
          | Some exh -> finish_exhausted st exh
          | None -> Ok (Div_complete { partial; at = upto }, snapshot k_next partial prev prev_pick))))

(* With a pool, the budgeted divergence check runs the chunked resumable
   engine (identical verdicts on completion; chunk-aligned exhaustion). *)
let certify_divergence_budgeted ?pool ?chunk ?start ?budget f ~certificate ~upto =
  match pool with
  | None -> certify_divergence_budgeted ?start ?budget f ~certificate ~upto
  | Some _ -> Result.map fst (certify_divergence_resumable ?pool ?chunk ?start ?budget f ~certificate ~upto)

let sum_budgeted ?pool ?chunk ?start ?budget f ~tail ~upto =
  Result.map fst (sum_resumable ?pool ?chunk ?start ?budget f ~tail ~upto)

let sum ?(start = 0) f ~tail ~upto =
  match sum_budgeted ~start f ~tail ~upto with
  | Ok (Complete enclosure) -> Ok enclosure
  | Ok (Exhausted _) -> Error "unlimited budget exhausted (impossible)"
  | Error e -> Error (Run_error.message e)

let sum_exn ?start f ~tail ~upto =
  match sum ?start f ~tail ~upto with Ok i -> i | Error msg -> failwith ("Series.sum: " ^ msg)

module Qb = Ipdb_bignum.Q

(* Memoised per-ratio state for [geometric_tail_exact]: the power table
   for r^n and the precomputed 1/(1-r). [Q.div a b] is [Q.mul a (inv b)]
   and canonical forms are unique, so [pow r n * inv (1 - r)] is
   bit-identical to the direct formula. Guarded by a mutex because zoo
   distributions evaluate tails from pool workers. *)
let geotail_lock = Mutex.create ()
let geotail_tabs : (Qb.t, Qb.Powtab.t * Qb.t) Hashtbl.t = Hashtbl.create 8

(* Beyond this exponent the table (quadratic total size in the exponent)
   would cost more memory than the memoisation saves; compute directly. *)
let geotail_memo_max = 4096

let geometric_tail_exact r n =
  let module Q = Ipdb_bignum.Q in
  if not (Q.is_probability r) || Q.is_one r then invalid_arg "Series.geometric_tail_exact: need 0 <= r < 1";
  if Ipdb_bignum.Arith.reference () || n < 0 || n > geotail_memo_max then Q.div (Q.pow r n) (Q.one_minus r)
  else begin
    Mutex.lock geotail_lock;
    let tab, inv_one_minus =
      match Hashtbl.find_opt geotail_tabs r with
      | Some v ->
        Mutex.unlock geotail_lock;
        v
      | None ->
        let v = (Q.Powtab.create r, Q.inv (Q.one_minus r)) in
        Hashtbl.add geotail_tabs r v;
        Mutex.unlock geotail_lock;
        v
    in
    Q.mul (Q.Powtab.pow tab n) inv_one_minus
  end
